"""Tests for item-stream generators and the synthetic application traces."""

import collections

import pytest

from repro.core.variability import variability
from repro.exceptions import ConfigurationError
from repro.streams import (
    ItemStreamConfig,
    database_size_trace,
    sensor_temperature_trace,
    sliding_window_item_stream,
    zipfian_item_stream,
)


class TestItemStreamConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ItemStreamConfig(length=0, universe_size=10)
        with pytest.raises(ConfigurationError):
            ItemStreamConfig(length=10, universe_size=0)
        with pytest.raises(ConfigurationError):
            ItemStreamConfig(length=10, universe_size=10, num_sites=0)


class TestZipfianItemStream:
    def _frequencies(self, updates):
        counts = collections.Counter()
        for update in updates:
            counts[update.item] += update.delta
        return counts

    def test_length_and_unit_deltas(self):
        config = ItemStreamConfig(length=1_000, universe_size=64, seed=1)
        updates = zipfian_item_stream(config)
        assert len(updates) == 1_000
        assert all(u.delta in (-1, 1) for u in updates)

    def test_frequencies_never_negative(self):
        config = ItemStreamConfig(length=5_000, universe_size=32, seed=2)
        updates = zipfian_item_stream(config, deletion_probability=0.4)
        counts = collections.Counter()
        for update in updates:
            counts[update.item] += update.delta
            assert counts[update.item] >= 0

    def test_zipf_skew_concentrates_mass(self):
        config = ItemStreamConfig(length=5_000, universe_size=100, seed=3)
        updates = zipfian_item_stream(config, exponent=1.5, deletion_probability=0.0)
        counts = self._frequencies(updates)
        top_item = max(counts, key=counts.get)
        assert top_item < 5  # the heaviest item is among the lowest-ranked ids
        assert counts[top_item] > 0.15 * len(updates)

    def test_sites_round_robin(self):
        config = ItemStreamConfig(length=9, universe_size=10, num_sites=3, seed=4)
        updates = zipfian_item_stream(config)
        assert [u.site for u in updates] == [0, 1, 2] * 3

    def test_reproducible(self):
        config = ItemStreamConfig(length=200, universe_size=16, seed=5)
        first = zipfian_item_stream(config)
        second = zipfian_item_stream(config)
        assert [(u.item, u.delta) for u in first] == [(u.item, u.delta) for u in second]

    def test_parameter_validation(self):
        config = ItemStreamConfig(length=10, universe_size=4)
        with pytest.raises(ConfigurationError):
            zipfian_item_stream(config, exponent=0.0)
        with pytest.raises(ConfigurationError):
            zipfian_item_stream(config, deletion_probability=1.0)


class TestSlidingWindowItemStream:
    def test_length(self):
        config = ItemStreamConfig(length=500, universe_size=20, seed=1)
        assert len(sliding_window_item_stream(config, window=32)) == 500

    def test_deletions_follow_insertions(self):
        config = ItemStreamConfig(length=2_000, universe_size=16, seed=2)
        updates = sliding_window_item_stream(config, window=16)
        counts = collections.Counter()
        for update in updates:
            counts[update.item] += update.delta
            assert counts[update.item] >= 0

    def test_dataset_size_stays_near_window(self):
        config = ItemStreamConfig(length=3_000, universe_size=16, seed=3)
        updates = sliding_window_item_stream(config, window=64)
        size = sum(u.delta for u in updates)
        assert 0 <= size <= 2 * 64

    def test_rejects_bad_window(self):
        config = ItemStreamConfig(length=10, universe_size=4)
        with pytest.raises(ConfigurationError):
            sliding_window_item_stream(config, window=0)


class TestDatabaseSizeTrace:
    def test_unit_and_non_negative(self):
        spec = database_size_trace(5_000, seed=1)
        assert spec.is_unit_stream()
        assert min(spec.values()) >= 0

    def test_grows_overall(self):
        spec = database_size_trace(10_000, seed=2)
        assert spec.final_value() > 1_000

    def test_low_variability(self):
        spec = database_size_trace(10_000, seed=3)
        # Nearly monotone: variability should be polylogarithmic, far below n.
        assert variability(spec.deltas) < 0.05 * spec.length

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            database_size_trace(100, growth_probability=0.4)
        with pytest.raises(ConfigurationError):
            database_size_trace(100, cleanup_fraction=1.0)


class TestSensorTemperatureTrace:
    def test_unit_stream(self):
        assert sensor_temperature_trace(2_000, seed=1).is_unit_stream()

    def test_hovers_near_baseline(self):
        spec = sensor_temperature_trace(20_000, baseline=300, seed=2)
        tail = spec.values()[1_000:]
        assert min(tail) > 150
        assert max(tail) < 450

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            sensor_temperature_trace(100, baseline=0)
        with pytest.raises(ConfigurationError):
            sensor_temperature_trace(100, reversion=2.0)
