"""Tests for the AMS F2 sketch and the stream persistence helpers."""

import collections

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, StreamError
from repro.sketches.ams import AmsF2Sketch
from repro.streams import ItemStreamConfig, random_walk_stream, zipfian_item_stream
from repro.streams.io import (
    load_item_stream_csv,
    load_stream_csv,
    save_item_stream_csv,
    save_stream_csv,
)
from repro.streams.model import StreamSpec


def _exact_f2(frequencies):
    return sum(count * count for count in frequencies.values())


class TestAmsF2Sketch:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AmsF2Sketch(width=0, depth=1)
        with pytest.raises(ConfigurationError):
            AmsF2Sketch(width=1, depth=0)
        with pytest.raises(ConfigurationError):
            AmsF2Sketch.from_error(epsilon=0.0)
        sketch = AmsF2Sketch(width=4, depth=2, seed=1)
        with pytest.raises(ConfigurationError):
            sketch.update(-1)

    def test_single_item_exact(self):
        sketch = AmsF2Sketch(width=8, depth=3, seed=2)
        for _ in range(10):
            sketch.update(5)
        # F2 of a single item with frequency 10 is 100; every counter is +-10.
        assert sketch.estimate() == pytest.approx(100.0)

    def test_estimate_within_relative_error(self):
        epsilon = 0.2
        sketch = AmsF2Sketch.from_error(epsilon, seed=3)
        rng = np.random.default_rng(4)
        frequencies = collections.Counter()
        for item in (rng.zipf(1.4, size=3_000) % 200):
            sketch.update(int(item))
            frequencies[int(item)] += 1
        exact = _exact_f2(frequencies)
        assert abs(sketch.estimate() - exact) <= 2 * epsilon * exact

    def test_supports_deletions(self):
        sketch = AmsF2Sketch(width=64, depth=5, seed=5)
        frequencies = collections.Counter()
        rng = np.random.default_rng(6)
        for _ in range(2_000):
            item = int(rng.integers(0, 50))
            if frequencies[item] > 0 and rng.random() < 0.3:
                sketch.update(item, -1)
                frequencies[item] -= 1
            else:
                sketch.update(item, +1)
                frequencies[item] += 1
        exact = _exact_f2(frequencies)
        assert abs(sketch.estimate() - exact) <= 0.5 * exact

    def test_merge_is_linear(self):
        first = AmsF2Sketch(width=16, depth=3, seed=7)
        second = AmsF2Sketch(width=16, depth=3, seed=7)
        combined = AmsF2Sketch(width=16, depth=3, seed=7)
        for item in range(40):
            first.update(item)
            combined.update(item)
        for item in range(20, 60):
            second.update(item)
            combined.update(item)
        merged = first.merge(second)
        assert merged.estimate() == pytest.approx(combined.estimate())
        with pytest.raises(ConfigurationError):
            first.merge(AmsF2Sketch(width=16, depth=3, seed=8))

    def test_size_accounting(self):
        sketch = AmsF2Sketch(width=10, depth=4, seed=9)
        assert sketch.size_in_counters() == 40
        assert sketch.updates == 0
        sketch.update(1)
        assert sketch.updates == 1


class TestStreamCsvRoundtrip:
    def test_delta_stream_roundtrip(self, tmp_path):
        spec = random_walk_stream(500, seed=11)
        path = tmp_path / "walk.csv"
        save_stream_csv(spec, path)
        loaded = load_stream_csv(path)
        assert loaded.deltas == spec.deltas
        assert loaded.name == spec.name
        assert loaded.start == spec.start
        assert loaded.params["seed"] == 11

    def test_delta_stream_with_start_value(self, tmp_path):
        spec = StreamSpec(name="offset", deltas=(3, -1, 2), start=7, params={"note": "x"})
        path = tmp_path / "offset.csv"
        save_stream_csv(spec, path)
        loaded = load_stream_csv(path)
        assert loaded.start == 7
        assert loaded.values() == spec.values()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StreamError):
            load_stream_csv(tmp_path / "nope.csv")

    def test_malformed_header_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,delta\n1,1\n")
        with pytest.raises(StreamError):
            load_stream_csv(path)

    def test_empty_stream_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text('#{"name": "x", "start": 0, "params": {}}\ntime,delta\n')
        with pytest.raises(StreamError):
            load_stream_csv(path)

    def test_item_stream_roundtrip(self, tmp_path):
        config = ItemStreamConfig(length=300, universe_size=20, num_sites=3, seed=12)
        updates = zipfian_item_stream(config)
        path = tmp_path / "items.csv"
        save_item_stream_csv(updates, path)
        loaded = load_item_stream_csv(path)
        assert loaded == updates

    def test_item_stream_bad_header(self, tmp_path):
        path = tmp_path / "bad_items.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(StreamError):
            load_item_stream_csv(path)

    def test_item_stream_missing_file(self, tmp_path):
        with pytest.raises(StreamError):
            load_item_stream_csv(tmp_path / "missing.csv")
