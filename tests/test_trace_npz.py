"""Binary (npz) trace persistence: round trips, memory-mapping, validation.

The npz format is the binary sibling of the ``time,site,delta`` CSV layout:
same columns, stored uncompressed so :func:`load_trace_npz` can hand them to
:class:`numpy.memmap` in place.  The tests pin the format against the CSV
path (identical columns, identical replay results through
``run_tracking_arrays``) and exercise the error surface.
"""

import numpy as np
import pytest

from repro.core import DeterministicCounter
from repro.exceptions import StreamError
from repro.monitoring.runner import run_tracking_arrays
from repro.streams import (
    TraceColumns,
    assign_sites,
    columns_from_updates,
    load_trace,
    load_trace_columns,
    load_trace_npz,
    random_walk_stream,
    save_trace_csv,
    save_trace_npz,
)


@pytest.fixture()
def trace():
    spec = random_walk_stream(2_000, seed=11)
    return columns_from_updates(assign_sites(spec, 4))


class TestNpzRoundTrip:
    def test_round_trip_matches_csv_path(self, trace, tmp_path):
        save_trace_csv(trace, tmp_path / "t.csv")
        save_trace_npz(trace, tmp_path / "t.npz")
        from_csv = load_trace_columns(tmp_path / "t.csv")
        from_npz = load_trace_npz(tmp_path / "t.npz")
        for a, b in zip(
            (from_csv.times, from_csv.sites, from_csv.deltas),
            (from_npz.times, from_npz.sites, from_npz.deltas),
        ):
            assert np.array_equal(a, b)

    def test_round_trip_from_update_sequence(self, trace, tmp_path):
        updates = trace.to_updates()
        save_trace_npz(updates, tmp_path / "t.npz")
        loaded = load_trace_npz(tmp_path / "t.npz")
        assert np.array_equal(loaded.times, trace.times)
        assert np.array_equal(loaded.deltas, trace.deltas)

    def test_mmap_load_returns_memmaps_with_identical_content(self, trace, tmp_path):
        save_trace_npz(trace, tmp_path / "t.npz")
        mapped = load_trace_npz(tmp_path / "t.npz", mmap_mode="r")
        assert isinstance(mapped.times, np.memmap)
        assert isinstance(mapped.deltas, np.memmap)
        assert np.array_equal(mapped.times, trace.times)
        assert np.array_equal(mapped.sites, trace.sites)
        assert np.array_equal(mapped.deltas, trace.deltas)

    def test_mmap_replay_is_bit_for_bit_the_eager_replay(self, trace, tmp_path):
        save_trace_npz(trace, tmp_path / "t.npz")
        mapped = load_trace_npz(tmp_path / "t.npz", mmap_mode="r")

        def run(columns):
            return run_tracking_arrays(
                DeterministicCounter(4, 0.1).build_network(),
                columns.times,
                columns.sites,
                columns.deltas,
                record_every=100,
            )

        eager = run(trace)
        lazy = run(mapped)
        assert eager.total_messages == lazy.total_messages
        assert eager.total_bits == lazy.total_bits
        assert [r.estimate for r in eager.records] == [
            r.estimate for r in lazy.records
        ]

    def test_load_trace_dispatches_on_suffix(self, trace, tmp_path):
        save_trace_csv(trace, tmp_path / "t.csv")
        save_trace_npz(trace, tmp_path / "t.npz")
        assert np.array_equal(load_trace(tmp_path / "t.csv").deltas, trace.deltas)
        assert np.array_equal(load_trace(tmp_path / "t.npz").deltas, trace.deltas)


class TestNpzValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StreamError):
            load_trace_npz(tmp_path / "missing.npz")

    def test_not_a_zip(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not an archive")
        with pytest.raises(StreamError):
            load_trace_npz(path)

    def test_missing_members(self, tmp_path):
        path = tmp_path / "partial.npz"
        np.savez(path, times=np.arange(3))
        with pytest.raises(StreamError, match="missing trace members"):
            load_trace_npz(path)

    def test_bad_mmap_mode(self, trace, tmp_path):
        save_trace_npz(trace, tmp_path / "t.npz")
        with pytest.raises(StreamError, match="mmap_mode"):
            load_trace_npz(tmp_path / "t.npz", mmap_mode="w+")

    def test_writable_mmap_refused(self, trace, tmp_path):
        # Flushing writes into a zip member would desynchronise the
        # archive's CRC and corrupt the trace file irrecoverably.
        save_trace_npz(trace, tmp_path / "t.npz")
        with pytest.raises(StreamError, match="corrupt"):
            load_trace_npz(tmp_path / "t.npz", mmap_mode="r+")

    def test_save_honours_exact_path_without_npz_suffix(self, trace, tmp_path):
        # np.savez appends ".npz" to bare filenames; the wrapper must write
        # to exactly the requested path instead of a silently different one.
        path = tmp_path / "trace.bin"
        save_trace_npz(trace, path)
        assert path.exists()
        assert not (tmp_path / "trace.bin.npz").exists()
        loaded = load_trace_npz(path)
        assert np.array_equal(loaded.deltas, trace.deltas)

    def test_mmap_rejected_for_csv(self, trace, tmp_path):
        save_trace_csv(trace, tmp_path / "t.csv")
        with pytest.raises(StreamError, match="npz"):
            load_trace(tmp_path / "t.csv", mmap_mode="r")

    def test_compressed_member_rejected_for_mmap(self, trace, tmp_path):
        path = tmp_path / "compressed.npz"
        np.savez_compressed(
            path, times=trace.times, sites=trace.sites, deltas=trace.deltas
        )
        with pytest.raises(StreamError, match="compressed"):
            load_trace_npz(path, mmap_mode="r")
        # Eager loading still works on the compressed layout.
        loaded = load_trace_npz(path)
        assert np.array_equal(loaded.deltas, trace.deltas)

    def test_empty_trace_refused_on_save(self, tmp_path):
        empty = TraceColumns(
            times=np.empty(0, dtype=np.int64),
            sites=np.empty(0, dtype=np.int64),
            deltas=np.empty(0, dtype=np.int64),
        )
        with pytest.raises(StreamError):
            save_trace_npz(empty, tmp_path / "t.npz")

    def test_non_integer_member_rejected(self, tmp_path):
        path = tmp_path / "floats.npz"
        np.savez(
            path,
            times=np.arange(3, dtype=np.int64),
            sites=np.zeros(3, dtype=np.int64),
            deltas=np.ones(3, dtype=np.float64),
        )
        with pytest.raises(StreamError, match="integer"):
            load_trace_npz(path)
