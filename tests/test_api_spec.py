"""Unit tests for the unified experiment API (:mod:`repro.api`).

Covers the three satellite contracts of the spec layer:

* every invalid axis value and every invalid axis *combination* fails in
  ``validate()`` with a message naming the offending fields;
* ``to_dict``/``from_dict`` round-trip through JSON, and unknown keys fail
  loudly (the schema-drift guard);
* the committed ``examples/specs/*.json`` scenarios stay loadable and
  executable (the same check CI runs through ``repro run --config``).
"""

import json
import pathlib

import pytest

from repro.api import (
    RunSpec,
    SourceSpec,
    Sweep,
    TopologySpec,
    TrackerSpec,
    TransportSpec,
)
from repro.asynchrony import AsyncTrackingResult
from repro.exceptions import ProtocolError

SPECS_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples" / "specs"


def _spec(**kwargs) -> RunSpec:
    defaults = dict(
        source=SourceSpec(stream="random_walk", length=200, seed=0, sites=4),
        tracker=TrackerSpec(name="deterministic", epsilon=0.2),
    )
    defaults.update(kwargs)
    return RunSpec(**defaults)


class TestValidationErrors:
    """Every bad axis fails with a message naming the offending fields."""

    def test_unknown_stream_names_field(self):
        with pytest.raises(ValueError, match=r"source\.stream"):
            _spec(source=SourceSpec(stream="nope", length=100)).validate()

    def test_unknown_tracker_names_field(self):
        with pytest.raises(ValueError, match=r"tracker\.name"):
            _spec(tracker=TrackerSpec(name="magic")).validate()

    def test_epsilon_out_of_range_names_field(self):
        with pytest.raises(ValueError, match=r"tracker\.epsilon"):
            _spec(tracker=TrackerSpec(name="deterministic", epsilon=1.5)).validate()

    def test_shards_below_one_names_field(self):
        with pytest.raises(ValueError, match=r"topology\.shards"):
            _spec(topology=TopologySpec(shards=0)).validate()

    def test_more_shards_than_sites_names_both_fields(self):
        with pytest.raises(ValueError, match=r"topology\.shards=8.*source\.sites=4"):
            _spec(topology=TopologySpec(shards=8)).validate()

    def test_unknown_partition_names_field(self):
        with pytest.raises(ValueError, match=r"topology\.partition"):
            _spec(topology=TopologySpec(shards=2, partition="spiral")).validate()

    def test_unknown_latency_names_field(self):
        with pytest.raises(ValueError, match=r"transport\.latency"):
            _spec(transport=TransportSpec(mode="async", latency="warp")).validate()

    def test_unknown_transport_mode_names_field(self):
        with pytest.raises(ValueError, match=r"transport\.mode"):
            _spec(transport=TransportSpec(mode="quantum")).validate()

    def test_negative_scale_names_field(self):
        with pytest.raises(ValueError, match=r"transport\.scale"):
            _spec(
                transport=TransportSpec(mode="async", latency="uniform", scale=-1)
            ).validate()

    def test_sync_with_positive_scale_is_a_conflict(self):
        with pytest.raises(ProtocolError, match=r"transport\.scale.*transport\.mode"):
            _spec(
                transport=TransportSpec(mode="sync", latency="uniform", scale=2.0)
            ).validate()

    def test_unknown_engine_names_field(self):
        with pytest.raises(ValueError, match=r"engine"):
            _spec(engine="warp").validate()

    def test_record_every_below_one(self):
        with pytest.raises(ValueError, match=r"record_every"):
            _spec(record_every=0).validate()

    def test_unknown_assignment_names_field(self):
        with pytest.raises(ValueError, match=r"source\.assignment"):
            _spec(
                source=SourceSpec(stream="monotone", length=50, assignment="chaos")
            ).validate()

    def test_arrays_with_async_transport_is_a_conflict(self):
        spec = _spec(
            source=SourceSpec(stream=None, trace="trace.npz"),
            transport=TransportSpec(mode="async", latency="uniform", scale=1.0),
            engine="arrays",
        )
        with pytest.raises(ProtocolError, match=r"engine='arrays'.*transport\.mode='async'"):
            spec.validate()

    def test_arrays_without_trace_is_a_conflict(self):
        with pytest.raises(ProtocolError, match=r"engine='arrays'.*source\.trace"):
            _spec(engine="arrays").validate()

    def test_trace_with_non_arrays_engine_is_a_conflict(self):
        spec = _spec(source=SourceSpec(stream=None, trace="t.csv"), engine="batched")
        with pytest.raises(ProtocolError, match=r"source\.trace.*engine"):
            spec.validate()

    def test_stream_and_trace_together_conflict(self):
        spec = _spec(
            source=SourceSpec(stream="monotone", trace="t.csv"), engine="arrays"
        )
        with pytest.raises(ProtocolError, match=r"source\.stream.*source\.trace"):
            spec.validate()

    def test_neither_stream_nor_trace(self):
        with pytest.raises(ValueError, match=r"source\.stream.*source\.trace"):
            _spec(source=SourceSpec(stream=None)).validate()

    def test_mmap_without_npz_trace(self):
        spec = _spec(
            source=SourceSpec(stream=None, trace="t.csv", mmap=True), engine="arrays"
        )
        with pytest.raises(ValueError, match=r"source\.mmap"):
            spec.validate()

    def test_mmap_without_trace_at_all(self):
        with pytest.raises(ProtocolError, match=r"source\.mmap.*source\.trace"):
            _spec(source=SourceSpec(stream="monotone", length=50, mmap=True)).validate()

    def test_static_tracker_threshold_below_one(self):
        with pytest.raises(ValueError, match=r"tracker\.threshold"):
            _spec(tracker=TrackerSpec(name="static", threshold=0)).validate()

    def test_zero_latency_with_positive_scale_conflicts(self):
        with pytest.raises(ProtocolError, match=r"transport\.latency='zero'"):
            _spec(
                transport=TransportSpec(mode="async", latency="zero", scale=3.0)
            ).validate()


class TestSerialization:
    def test_to_dict_round_trips_through_json(self):
        spec = _spec(
            topology=TopologySpec(shards=2, partition="strided"),
            transport=TransportSpec(mode="async", latency="heavytail", scale=2.0),
            engine="batched",
            record_every=5,
        )
        restored = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.to_dict() == spec.to_dict()

    def test_engine_alias_normalises_in_to_dict(self):
        assert _spec(engine="perupdate").to_dict()["engine"] == "per-update"

    def test_from_dict_rejects_unknown_top_level_key(self):
        with pytest.raises(ValueError, match=r"unknown RunSpec fields \['enginee'\]"):
            RunSpec.from_dict({"enginee": "auto"})

    def test_from_dict_rejects_unknown_section_key(self):
        with pytest.raises(ValueError, match=r"unknown tracker fields \['eps'\]"):
            RunSpec.from_dict({"tracker": {"eps": 0.1}})

    def test_from_dict_of_partial_document_takes_defaults(self):
        spec = RunSpec.from_dict({"tracker": {"name": "naive"}})
        assert spec.tracker.name == "naive"
        assert spec.source.stream == "random_walk"
        assert spec.engine == "auto"

    def test_save_load_file_round_trip(self, tmp_path):
        spec = _spec(record_every=9)
        path = tmp_path / "spec.json"
        spec.save(path)
        assert RunSpec.load(path) == spec

    def test_with_overrides_rejects_unknown_path(self):
        with pytest.raises(ValueError, match=r"transport\.warp"):
            _spec().with_overrides({"transport.warp": 1})

    def test_with_overrides_rejects_unknown_section(self):
        with pytest.raises(ValueError, match=r"universe\.size"):
            _spec().with_overrides({"universe.size": 1})

    def test_with_overrides_replaces_nested_field(self):
        spec = _spec().with_overrides({"tracker.name": "naive", "record_every": 3})
        assert spec.tracker.name == "naive"
        assert spec.record_every == 3

    def test_with_overrides_introduces_open_params_keys(self):
        # params/assignment_params are open mappings (generator/policy
        # kwargs), so new keys may appear even when absent from the base.
        spec = _spec(
            source=SourceSpec(stream="biased_walk", length=300, sites=4)
        ).with_overrides(
            {
                "source.params.drift": 0.9,
                "source.assignment": "blocked",
                "source.assignment_params.block_length": 32,
            }
        )
        assert spec.source.params == {"drift": 0.9}
        assert spec.source.assignment_params == {"block_length": 32}
        assert spec.validate().run().total_messages > 0


class TestSweep:
    def test_grid_expands_as_cartesian_product_in_order(self):
        sweep = Sweep(
            _spec(),
            {"tracker.name": ["naive", "deterministic"], "record_every": [1, 2]},
        )
        assert len(sweep) == 4
        combos = [
            (o["tracker.name"], o["record_every"]) for o, _ in sweep.specs()
        ]
        assert combos == [
            ("naive", 1),
            ("naive", 2),
            ("deterministic", 1),
            ("deterministic", 2),
        ]

    def test_unknown_grid_axis_fails_at_construction(self):
        with pytest.raises(ValueError, match=r"tracker\.nam"):
            Sweep(_spec(), {"tracker.nam": ["naive"]})

    def test_empty_axis_fails(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="no values"):
            Sweep(_spec(), {"tracker.name": []})

    def test_run_attaches_results_per_point(self):
        points = Sweep(_spec(), {"tracker.name": ["naive", "deterministic"]}).run()
        assert [p.spec.tracker.name for p in points] == ["naive", "deterministic"]
        assert all(p.result.total_messages > 0 for p in points)


class TestResultSummaries:
    def test_sync_summary_and_to_dict_vocabulary(self):
        result = _spec(record_every=7).run()
        summary = result.summary(0.2)
        assert summary["num_records"] == result.length
        assert summary["total_messages"] == result.total_messages
        assert summary["messages_by_kind"] == result.messages_by_kind
        assert summary["max_relative_error"] == result.max_relative_error()
        assert summary["violation_fraction"] == result.violation_fraction(0.2)
        full = result.to_dict(0.2)
        assert len(full["records"]) == result.length
        assert full["records"][0]["time"] == result.records[0].time
        # The whole document is JSON-serializable as-is.
        json.dumps(full)

    def test_async_summary_attaches_staleness(self):
        result = _spec(
            transport=TransportSpec(mode="async", latency="uniform", scale=2.0),
            record_every=7,
        ).run()
        assert isinstance(result, AsyncTrackingResult)
        summary = result.summary()
        assert summary["staleness"]["delivered"] == result.staleness.delivered
        assert summary["final_clock"] == result.final_clock
        assert summary["settled_error"] == result.settled_error()
        json.dumps(result.to_dict(0.2))


class TestCommittedExampleSpecs:
    """The committed scenarios stay loadable and executable (schema guard)."""

    def test_specs_directory_exists_and_is_populated(self):
        assert sorted(p.name for p in SPECS_DIR.glob("*.json"))

    @pytest.mark.parametrize(
        "path", sorted(SPECS_DIR.glob("*.json")), ids=lambda p: p.stem
    )
    def test_spec_round_trips_and_runs_smoke_sized(self, path):
        spec = RunSpec.load(path)
        assert RunSpec.from_dict(spec.to_dict()) == spec
        if spec.source.live:
            # A live spec has no batch workload; its executable surface is
            # the network build (`repro serve` drives it end-to-end in
            # tests/test_live_service.py).
            spec.validate()
            assert spec.build_network() is not None
            return
        smoke = spec.with_overrides(
            {"source.length": 600, "record_every": 60}
        ).validate()
        result = smoke.run()
        assert result.total_messages > 0
        assert result.length > 0
