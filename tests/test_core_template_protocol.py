"""Tests for the shared block-based protocol template (Sections 3.1/3.2)."""

import pytest

from repro.core import DeterministicCounter
from repro.core.template import check_tracking_parameters
from repro.exceptions import ConfigurationError
from repro.monitoring.messages import COORDINATOR, Message, MessageKind
from repro.streams import assign_sites, biased_walk_stream, random_walk_stream


class TestParameterChecks:
    def test_accepts_valid(self):
        check_tracking_parameters(1, 0.5)

    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            check_tracking_parameters(0, 0.5)
        with pytest.raises(ConfigurationError):
            check_tracking_parameters(1, 1.0)


class TestBlockProtocol:
    def _run(self, spec, k, epsilon=0.1):
        factory = DeterministicCounter(k, epsilon)
        network = factory.build_network()
        network.channel.enable_log()
        for update in assign_sites(spec, k):
            network.deliver_update(update.time, update.site, update.delta)
        return network

    def test_coordinator_boundary_state_is_exact(self):
        spec = random_walk_stream(2_000, seed=1)
        network = self._run(spec, 3)
        coordinator = network.coordinator
        values = spec.values()
        assert coordinator.boundary_time <= 2_000
        assert coordinator.boundary_value == values[coordinator.boundary_time - 1]

    def test_level_matches_boundary_value(self):
        spec = biased_walk_stream(6_000, drift=0.7, seed=2)
        network = self._run(spec, 2)
        coordinator = network.coordinator
        k = 2
        magnitude = abs(coordinator.boundary_value)
        r = coordinator.level
        if magnitude < 4 * k:
            assert r == 0
        else:
            assert (2 ** r) * 2 * k <= magnitude < (2 ** r) * 4 * k

    def test_sites_and_coordinator_agree_on_level(self):
        spec = biased_walk_stream(4_000, drift=0.6, seed=3)
        network = self._run(spec, 4)
        for site in network.sites:
            assert site.level == network.coordinator.level

    def test_message_mix_contains_all_protocol_roles(self):
        spec = random_walk_stream(3_000, seed=4)
        network = self._run(spec, 3)
        kinds = {message.kind for message in network.channel.log}
        assert kinds == {
            MessageKind.REPORT,
            MessageKind.REQUEST,
            MessageKind.REPLY,
            MessageKind.BROADCAST,
        }

    def test_request_reply_broadcast_counts_match_blocks(self):
        spec = random_walk_stream(3_000, seed=5)
        k = 3
        network = self._run(spec, k)
        by_kind = network.stats.by_kind
        blocks = network.coordinator.blocks_completed
        assert by_kind["request"] == blocks * k
        assert by_kind["reply"] == blocks * k
        assert by_kind["broadcast"] == blocks * k

    def test_per_block_partition_overhead_is_at_most_5k(self):
        spec = random_walk_stream(4_000, seed=6)
        k = 4
        network = self._run(spec, k)
        by_kind = network.stats.by_kind
        blocks = max(network.coordinator.blocks_completed, 1)
        partition_messages = (
            by_kind.get("request", 0) + by_kind.get("reply", 0) + by_kind.get("broadcast", 0)
        )
        count_reports = sum(
            1
            for message in network.channel.log
            if message.kind is MessageKind.REPORT and "count" in message.payload
        )
        assert (partition_messages + count_reports) <= 5 * k * (blocks + 1)

    def test_unexpected_message_kinds_rejected(self):
        factory = DeterministicCounter(2, 0.1)
        network = factory.build_network()
        site = network.sites[0]
        bogus = Message(kind=MessageKind.REPLY, sender=COORDINATOR, receiver=0, payload={})
        with pytest.raises(ConfigurationError):
            site.receive_message(bogus)
        coordinator = network.coordinator
        bogus_for_coordinator = Message(
            kind=MessageKind.BROADCAST, sender=0, receiver=COORDINATOR, payload={}
        )
        with pytest.raises(ConfigurationError):
            coordinator.receive_message(bogus_for_coordinator)

    def test_reply_outside_block_close_rejected(self):
        factory = DeterministicCounter(1, 0.1)
        network = factory.build_network()
        stray_reply = Message(
            kind=MessageKind.REPLY,
            sender=0,
            receiver=COORDINATOR,
            payload={"count": 0, "change": 0},
        )
        with pytest.raises(ConfigurationError):
            network.coordinator.receive_message(stray_reply)

    def test_single_site_network_still_partitions(self):
        spec = random_walk_stream(1_000, seed=7)
        network = self._run(spec, 1)
        assert network.coordinator.blocks_completed > 100
