"""Tests for distributed item-frequency tracking (Appendix H)."""

import collections

import pytest

from repro.core.frequencies import (
    CRPrecisReducer,
    FrequencyTracker,
    HashReducer,
    IdentityReducer,
    run_frequency_tracking,
)
from repro.exceptions import ConfigurationError, StreamError
from repro.streams import ItemStreamConfig, sliding_window_item_stream, zipfian_item_stream
from repro.types import ItemUpdate


def _true_frequencies(updates):
    counts = collections.Counter()
    for update in updates:
        counts[update.item] += update.delta
    return counts


class TestReducers:
    def test_identity_reducer(self):
        reducer = IdentityReducer()
        assert reducer.keys_for(42) == ((0, 42),)
        assert reducer.combine([7.0]) == 7.0

    def test_hash_reducer_keys_stable_and_in_range(self):
        reducer = HashReducer(num_buckets=16, num_rows=3, seed=1)
        keys = reducer.keys_for(1234)
        assert keys == reducer.keys_for(1234)
        assert len(keys) == 3
        for row, bucket in keys:
            assert 0 <= bucket < 16
        assert [row for row, _ in keys] == [0, 1, 2]

    def test_hash_reducer_from_epsilon(self):
        reducer = HashReducer.from_epsilon(0.1, seed=2)
        assert reducer.num_buckets == 270

    def test_hash_reducer_combine_median(self):
        reducer = HashReducer(num_buckets=8, num_rows=3, seed=3)
        assert reducer.combine([1.0, 5.0, 100.0]) == 5.0

    def test_cr_precis_reducer_keys(self):
        reducer = CRPrecisReducer(primes=[5, 7])
        assert reducer.keys_for(12) == ((0, 2), (1, 5))

    def test_cr_precis_from_epsilon_rows(self):
        reducer = CRPrecisReducer.from_epsilon(0.5, universe_size=256, rows=4)
        assert reducer.num_rows == 4
        assert all(p >= 2 for p in reducer.primes)

    def test_reducer_validation(self):
        with pytest.raises(ConfigurationError):
            HashReducer(num_buckets=0)
        with pytest.raises(ConfigurationError):
            CRPrecisReducer(primes=[])


class TestExactFrequencyTracking:
    def test_error_within_epsilon_f1(self):
        config = ItemStreamConfig(length=3_000, universe_size=40, num_sites=3, seed=1)
        updates = zipfian_item_stream(config, deletion_probability=0.25)
        tracker = FrequencyTracker(num_sites=3, epsilon=0.2)
        result = run_frequency_tracking(tracker, updates, audit_every=100)
        assert result.violations(0.2) == 0
        assert result.max_error_ratio() <= 0.2

    def test_small_epsilon_tightens_error(self):
        config = ItemStreamConfig(length=2_000, universe_size=30, num_sites=2, seed=2)
        updates = zipfian_item_stream(config)
        loose = run_frequency_tracking(FrequencyTracker(2, 0.3), updates, audit_every=200)
        tight = run_frequency_tracking(FrequencyTracker(2, 0.05), updates, audit_every=200)
        assert tight.max_error_ratio() <= loose.max_error_ratio() + 1e-9
        assert tight.total_messages >= loose.total_messages

    def test_sliding_window_stream(self):
        config = ItemStreamConfig(length=2_000, universe_size=24, num_sites=4, seed=3)
        updates = sliding_window_item_stream(config, window=128)
        tracker = FrequencyTracker(num_sites=4, epsilon=0.25)
        result = run_frequency_tracking(tracker, updates, audit_every=150)
        assert result.violations(0.25) == 0

    def test_final_estimates_close_to_truth(self):
        config = ItemStreamConfig(length=2_500, universe_size=20, num_sites=2, seed=4)
        updates = zipfian_item_stream(config, deletion_probability=0.2)
        tracker = FrequencyTracker(num_sites=2, epsilon=0.1)
        network = tracker.build_network()
        for update in updates:
            network.sites[update.site].receive_item_update(update.time, update.item, update.delta)
        truth = _true_frequencies(updates)
        f1 = sum(truth.values())
        for item, count in truth.items():
            assert abs(network.coordinator.query(item) - count) <= 0.1 * f1 + 1e-9

    def test_f1_variability_reported(self):
        config = ItemStreamConfig(length=1_000, universe_size=16, seed=5)
        updates = zipfian_item_stream(config)
        result = run_frequency_tracking(FrequencyTracker(1, 0.2), updates, audit_every=100)
        assert result.f1_variability > 0.0
        assert result.f1_variability < 1_000.0

    def test_rejects_over_deletion(self):
        bad = [
            ItemUpdate(time=1, site=0, item=1, delta=1),
            ItemUpdate(time=2, site=0, item=1, delta=-1),
            ItemUpdate(time=3, site=0, item=1, delta=-1),
        ]
        with pytest.raises(StreamError):
            run_frequency_tracking(FrequencyTracker(1, 0.2), bad)

    def test_track_method_redirects(self):
        with pytest.raises(ConfigurationError):
            FrequencyTracker(1, 0.2).track([])

    def test_rejects_bad_audit_every(self):
        with pytest.raises(ConfigurationError):
            run_frequency_tracking(FrequencyTracker(1, 0.2), [], audit_every=0)


class TestSketchedFrequencyTracking:
    def test_hash_reducer_respects_epsilon_budget(self):
        config = ItemStreamConfig(length=3_000, universe_size=200, num_sites=2, seed=6)
        updates = zipfian_item_stream(config, deletion_probability=0.15)
        reducer = HashReducer.from_epsilon(0.3, num_rows=3, seed=7)
        tracker = FrequencyTracker(num_sites=2, epsilon=0.3, reducer=reducer)
        result = run_frequency_tracking(tracker, updates, audit_every=200)
        # Tracking error (eps/3-ish) plus collision error; the combined budget
        # of Appendix H is eps * F1.
        assert result.max_error_ratio() <= 0.3 + 1e-9

    def test_cr_precis_reducer_respects_epsilon_budget(self):
        config = ItemStreamConfig(length=2_500, universe_size=300, num_sites=2, seed=8)
        updates = zipfian_item_stream(config, deletion_probability=0.15)
        reducer = CRPrecisReducer.from_epsilon(0.3, universe_size=300, rows=4)
        tracker = FrequencyTracker(num_sites=2, epsilon=0.3, reducer=reducer)
        result = run_frequency_tracking(tracker, updates, audit_every=200)
        assert result.max_error_ratio() <= 0.3 + 1e-9

    def test_sketched_tracker_uses_fewer_counters_than_universe(self):
        reducer = HashReducer.from_epsilon(0.25, seed=9)
        assert reducer.num_buckets < 1_000  # independent of |U|
