"""Tests for the deterministic tracker of Section 3.3."""

import pytest

from repro.analysis.bounds import deterministic_message_bound
from repro.core import DeterministicCounter, variability
from repro.core.deterministic import DeterministicCoordinator, DeterministicSite
from repro.exceptions import ConfigurationError, StreamError
from repro.streams import (
    RandomAssignment,
    SkewedAssignment,
    assign_sites,
    biased_walk_stream,
    monotone_stream,
    nearly_monotone_stream,
    random_walk_stream,
    sawtooth_stream,
)


class TestParameterValidation:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            DeterministicCounter(num_sites=2, epsilon=0.0)
        with pytest.raises(ConfigurationError):
            DeterministicCounter(num_sites=2, epsilon=1.5)

    def test_rejects_bad_site_count(self):
        with pytest.raises(ConfigurationError):
            DeterministicCounter(num_sites=0, epsilon=0.1)

    def test_rejects_non_unit_updates(self):
        counter = DeterministicCounter(num_sites=1, epsilon=0.1)
        network = counter.build_network()
        with pytest.raises(StreamError):
            network.deliver_update(1, 0, 3)


class TestErrorGuarantee:
    """The deterministic guarantee |f - fhat| <= eps |f| must hold at every step."""

    @pytest.mark.parametrize("epsilon", [0.25, 0.1, 0.05])
    @pytest.mark.parametrize("num_sites", [1, 3, 8])
    def test_random_walk(self, epsilon, num_sites):
        spec = random_walk_stream(3_000, seed=17)
        updates = assign_sites(spec, num_sites)
        result = DeterministicCounter(num_sites, epsilon).track(updates)
        assert result.max_relative_error() <= epsilon + 1e-12
        assert result.error_violations(epsilon) == 0

    def test_monotone(self):
        spec = monotone_stream(5_000)
        result = DeterministicCounter(4, 0.1).track(assign_sites(spec, 4))
        assert result.max_relative_error() <= 0.1 + 1e-12

    def test_nearly_monotone(self):
        spec = nearly_monotone_stream(5_000, deletion_fraction=0.25, seed=3)
        result = DeterministicCounter(4, 0.1).track(assign_sites(spec, 4))
        assert result.error_violations(0.1) == 0

    def test_biased_walk(self):
        spec = biased_walk_stream(5_000, drift=0.3, seed=4)
        result = DeterministicCounter(6, 0.05).track(assign_sites(spec, 6))
        assert result.error_violations(0.05) == 0

    def test_sawtooth_through_zero(self):
        spec = sawtooth_stream(2_000, amplitude=10)
        result = DeterministicCounter(2, 0.1).track(assign_sites(spec, 2))
        assert result.error_violations(0.1) == 0

    def test_guarantee_independent_of_assignment(self):
        spec = random_walk_stream(3_000, seed=5)
        for policy in (RandomAssignment(seed=1), SkewedAssignment(hot_fraction=0.9, seed=2)):
            updates = assign_sites(spec, 5, policy=policy)
            result = DeterministicCounter(5, 0.1).track(updates)
            assert result.error_violations(0.1) == 0


class TestCommunicationBound:
    """Messages are O(k v / eps); we check against the paper's explicit constants."""

    @pytest.mark.parametrize("num_sites", [1, 4])
    def test_random_walk_within_bound(self, num_sites):
        spec = random_walk_stream(4_000, seed=23)
        v = variability(spec.deltas)
        result = DeterministicCounter(num_sites, 0.1).track(assign_sites(spec, num_sites))
        assert result.total_messages <= deterministic_message_bound(num_sites, 0.1, v)

    def test_monotone_within_bound(self):
        spec = monotone_stream(8_000)
        v = variability(spec.deltas)
        result = DeterministicCounter(4, 0.1).track(assign_sites(spec, 4))
        assert result.total_messages <= deterministic_message_bound(4, 0.1, v)

    def test_monotone_costs_far_less_than_stream_length(self):
        spec = monotone_stream(16_000)
        result = DeterministicCounter(2, 0.1).track(assign_sites(spec, 2))
        assert result.total_messages < 0.2 * spec.length

    def test_messages_scale_with_variability_not_length(self):
        # Same length, very different variability: the biased walk (low v)
        # must be much cheaper than the sawtooth (high v).
        low_v = biased_walk_stream(6_000, drift=0.8, seed=2)
        high_v = sawtooth_stream(6_000, amplitude=10)
        counter = DeterministicCounter(2, 0.1)
        low_cost = counter.track(assign_sites(low_v, 2)).total_messages
        high_cost = counter.track(assign_sites(high_v, 2)).total_messages
        assert low_cost < high_cost / 5

    def test_smaller_epsilon_costs_more_messages(self):
        spec = biased_walk_stream(6_000, drift=0.5, seed=6)
        updates = assign_sites(spec, 4)
        loose = DeterministicCounter(4, 0.2).track(updates).total_messages
        tight = DeterministicCounter(4, 0.02).track(updates).total_messages
        assert tight > loose


class TestInternals:
    def test_site_condition_level_zero(self):
        site = DeterministicSite(site_id=0, num_sites=2, epsilon=0.1)
        site.level = 0
        site.unreported_drift = 1
        assert site.report_condition()

    def test_site_condition_higher_level(self):
        site = DeterministicSite(site_id=0, num_sites=2, epsilon=0.1)
        site.level = 5  # eps * 2^5 = 3.2
        site.unreported_drift = 3
        assert not site.report_condition()
        site.unreported_drift = 4
        assert site.report_condition()

    def test_coordinator_estimate_sums_boundary_and_drifts(self):
        coordinator = DeterministicCoordinator(num_sites=2, epsilon=0.1)
        coordinator.boundary_value = 10
        coordinator._drift_estimates = {0: 3, 1: -1}
        assert coordinator.estimate() == pytest.approx(12.0)

    def test_blocks_completed_counter_advances(self):
        spec = random_walk_stream(2_000, seed=9)
        counter = DeterministicCounter(2, 0.1)
        network = counter.build_network()
        for update in assign_sites(spec, 2):
            network.deliver_update(update.time, update.site, update.delta)
        assert network.coordinator.blocks_completed > 10

    def test_estimate_exact_at_block_boundaries(self):
        spec = random_walk_stream(1_000, seed=10)
        counter = DeterministicCounter(1, 0.1)
        network = counter.build_network()
        values = spec.values()
        exact_hits = 0
        for update in assign_sites(spec, 1):
            network.deliver_update(update.time, update.site, update.delta)
            coordinator = network.coordinator
            if coordinator.boundary_time == update.time:
                assert coordinator.boundary_value == values[update.time - 1]
                exact_hits += 1
        assert exact_hits > 0
