"""Tests for messages, bit accounting and the counted channel."""

import pytest

from repro.exceptions import ProtocolError
from repro.monitoring import (
    BROADCAST_SITE,
    COORDINATOR,
    Channel,
    Message,
    MessageKind,
    integer_bit_length,
    message_bits,
)


def _report(payload=None, sender=0):
    return Message(
        kind=MessageKind.REPORT,
        sender=sender,
        receiver=COORDINATOR,
        payload=payload or {},
        time=1,
    )


class TestBitAccounting:
    def test_integer_bit_length_small(self):
        assert integer_bit_length(0) == 2  # sign + one magnitude bit
        assert integer_bit_length(1) == 2
        assert integer_bit_length(-1) == 2

    def test_integer_bit_length_grows_logarithmically(self):
        assert integer_bit_length(255) == 9
        assert integer_bit_length(256) == 10
        assert integer_bit_length(2**20) == 22

    def test_float_payload_charged_as_word(self):
        assert integer_bit_length(0.5) == 32

    def test_message_bits_header_plus_payload(self):
        empty = _report()
        with_payload = _report({"count": 255})
        assert message_bits(empty) == 16
        assert message_bits(with_payload) == 16 + 9
        assert with_payload.bits() == message_bits(with_payload)


class TestChannel:
    def test_requires_at_least_one_site(self):
        with pytest.raises(ProtocolError):
            Channel(num_sites=0)

    def test_send_to_coordinator_counts(self):
        channel = Channel(num_sites=2)
        received = []
        channel.register_coordinator(received.append)
        channel.register_site(0, lambda m: None)
        channel.register_site(1, lambda m: None)
        channel.send_to_coordinator(_report({"count": 3}))
        assert channel.stats.messages == 1
        assert channel.stats.bits == 16 + 3
        assert len(received) == 1

    def test_send_without_coordinator_raises(self):
        channel = Channel(num_sites=1)
        with pytest.raises(ProtocolError):
            channel.send_to_coordinator(_report())

    def test_broadcast_charged_per_site(self):
        channel = Channel(num_sites=3)
        delivered = []
        channel.register_coordinator(lambda m: None)
        for site_id in range(3):
            channel.register_site(site_id, lambda m, s=site_id: delivered.append(s))
        broadcast = Message(
            kind=MessageKind.BROADCAST,
            sender=COORDINATOR,
            receiver=BROADCAST_SITE,
            payload={"level": 2},
            time=1,
        )
        channel.send_to_site(broadcast)
        assert delivered == [0, 1, 2]
        assert channel.stats.messages == 3

    def test_unicast_to_unknown_site_raises(self):
        channel = Channel(num_sites=1)
        channel.register_coordinator(lambda m: None)
        channel.register_site(0, lambda m: None)
        bad = Message(kind=MessageKind.REQUEST, sender=COORDINATOR, receiver=5, payload={})
        with pytest.raises(ProtocolError):
            channel.send_to_site(bad)

    def test_stats_by_kind(self):
        channel = Channel(num_sites=1)
        channel.register_coordinator(lambda m: None)
        channel.register_site(0, lambda m: None)
        channel.send_to_coordinator(_report())
        channel.send_to_coordinator(
            Message(kind=MessageKind.REPLY, sender=0, receiver=COORDINATOR, payload={})
        )
        assert channel.stats.by_kind == {"report": 1, "reply": 1}

    def test_log_disabled_by_default(self):
        channel = Channel(num_sites=1)
        channel.register_coordinator(lambda m: None)
        channel.register_site(0, lambda m: None)
        channel.send_to_coordinator(_report())
        assert channel.log == []

    def test_log_records_when_enabled(self):
        channel = Channel(num_sites=1)
        channel.enable_log()
        channel.register_coordinator(lambda m: None)
        channel.register_site(0, lambda m: None)
        channel.send_to_coordinator(_report({"count": 1}))
        assert len(channel.log) == 1
        assert channel.log[0].payload["count"] == 1

    def test_stats_snapshot_is_independent(self):
        channel = Channel(num_sites=1)
        channel.register_coordinator(lambda m: None)
        channel.register_site(0, lambda m: None)
        channel.send_to_coordinator(_report())
        snapshot = channel.stats.snapshot()
        channel.send_to_coordinator(_report())
        assert snapshot.messages == 1
        assert channel.stats.messages == 2


class TestBroadcastLogAccounting:
    """Regression: a broadcast is charged k copies and must log k entries."""

    def _broadcast(self):
        return Message(
            kind=MessageKind.BROADCAST,
            sender=COORDINATOR,
            receiver=BROADCAST_SITE,
            payload={"level": 3},
        )

    def test_broadcast_logs_one_entry_per_charged_copy(self):
        channel = Channel(num_sites=4)
        channel.enable_log()
        channel.register_coordinator(lambda m: None)
        for site_id in range(4):
            channel.register_site(site_id, lambda m: None)
        channel.send_to_site(self._broadcast())
        assert channel.stats.messages == 4
        assert len(channel.log) == channel.stats.messages
        assert all(m.kind is MessageKind.BROADCAST for m in channel.log)

    def test_log_length_matches_charged_messages_over_a_full_run(self):
        from repro.core import DeterministicCounter
        from repro.streams import assign_sites, random_walk_stream

        factory = DeterministicCounter(3, 0.1)
        network = factory.build_network()
        network.channel.enable_log()
        updates = assign_sites(random_walk_stream(2_000, seed=13), 3)
        for update in updates:
            network.deliver_update(update.time, update.site, update.delta)
        assert network.coordinator.blocks_completed > 0  # broadcasts occurred
        assert len(network.channel.log) == network.stats.messages

    def test_charge_bulk_accounting_matches_record(self):
        channel = Channel(num_sites=1)
        channel.register_coordinator(lambda m: None)
        channel.register_site(0, lambda m: None)
        message = _report({"count": 5})
        channel.charge(MessageKind.REPORT, 3, 3 * message.bits())
        reference = Channel(num_sites=1)
        reference.register_coordinator(lambda m: None)
        reference.register_site(0, lambda m: None)
        for _ in range(3):
            reference.send_to_coordinator(_report({"count": 5}))
        assert channel.stats.messages == reference.stats.messages
        assert channel.stats.bits == reference.stats.bits
        assert channel.stats.by_kind == reference.stats.by_kind
