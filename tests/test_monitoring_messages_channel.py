"""Tests for messages, bit accounting and the counted channel."""

import pytest

from repro.exceptions import ProtocolError
from repro.monitoring import (
    BROADCAST_SITE,
    COORDINATOR,
    Channel,
    Message,
    MessageKind,
    integer_bit_length,
    message_bits,
)


def _report(payload=None, sender=0):
    return Message(
        kind=MessageKind.REPORT,
        sender=sender,
        receiver=COORDINATOR,
        payload=payload or {},
        time=1,
    )


class TestBitAccounting:
    def test_integer_bit_length_small(self):
        assert integer_bit_length(0) == 2  # sign + one magnitude bit
        assert integer_bit_length(1) == 2
        assert integer_bit_length(-1) == 2

    def test_integer_bit_length_grows_logarithmically(self):
        assert integer_bit_length(255) == 9
        assert integer_bit_length(256) == 10
        assert integer_bit_length(2**20) == 22

    def test_float_payload_charged_as_word(self):
        assert integer_bit_length(0.5) == 32

    def test_message_bits_header_plus_payload(self):
        empty = _report()
        with_payload = _report({"count": 255})
        assert message_bits(empty) == 16
        assert message_bits(with_payload) == 16 + 9
        assert with_payload.bits() == message_bits(with_payload)


class TestChannel:
    def test_requires_at_least_one_site(self):
        with pytest.raises(ProtocolError):
            Channel(num_sites=0)

    def test_send_to_coordinator_counts(self):
        channel = Channel(num_sites=2)
        received = []
        channel.register_coordinator(received.append)
        channel.register_site(0, lambda m: None)
        channel.register_site(1, lambda m: None)
        channel.send_to_coordinator(_report({"count": 3}))
        assert channel.stats.messages == 1
        assert channel.stats.bits == 16 + 3
        assert len(received) == 1

    def test_send_without_coordinator_raises(self):
        channel = Channel(num_sites=1)
        with pytest.raises(ProtocolError):
            channel.send_to_coordinator(_report())

    def test_broadcast_charged_per_site(self):
        channel = Channel(num_sites=3)
        delivered = []
        channel.register_coordinator(lambda m: None)
        for site_id in range(3):
            channel.register_site(site_id, lambda m, s=site_id: delivered.append(s))
        broadcast = Message(
            kind=MessageKind.BROADCAST,
            sender=COORDINATOR,
            receiver=BROADCAST_SITE,
            payload={"level": 2},
            time=1,
        )
        channel.send_to_site(broadcast)
        assert delivered == [0, 1, 2]
        assert channel.stats.messages == 3

    def test_unicast_to_unknown_site_raises(self):
        channel = Channel(num_sites=1)
        channel.register_coordinator(lambda m: None)
        channel.register_site(0, lambda m: None)
        bad = Message(kind=MessageKind.REQUEST, sender=COORDINATOR, receiver=5, payload={})
        with pytest.raises(ProtocolError):
            channel.send_to_site(bad)

    def test_stats_by_kind(self):
        channel = Channel(num_sites=1)
        channel.register_coordinator(lambda m: None)
        channel.register_site(0, lambda m: None)
        channel.send_to_coordinator(_report())
        channel.send_to_coordinator(
            Message(kind=MessageKind.REPLY, sender=0, receiver=COORDINATOR, payload={})
        )
        assert channel.stats.by_kind == {"report": 1, "reply": 1}

    def test_log_disabled_by_default(self):
        channel = Channel(num_sites=1)
        channel.register_coordinator(lambda m: None)
        channel.register_site(0, lambda m: None)
        channel.send_to_coordinator(_report())
        assert channel.log == []

    def test_log_records_when_enabled(self):
        channel = Channel(num_sites=1)
        channel.enable_log()
        channel.register_coordinator(lambda m: None)
        channel.register_site(0, lambda m: None)
        channel.send_to_coordinator(_report({"count": 1}))
        assert len(channel.log) == 1
        assert channel.log[0].payload["count"] == 1

    def test_stats_snapshot_is_independent(self):
        channel = Channel(num_sites=1)
        channel.register_coordinator(lambda m: None)
        channel.register_site(0, lambda m: None)
        channel.send_to_coordinator(_report())
        snapshot = channel.stats.snapshot()
        channel.send_to_coordinator(_report())
        assert snapshot.messages == 1
        assert channel.stats.messages == 2


class TestBroadcastLogAccounting:
    """Regression: a broadcast is charged k copies and must log k entries."""

    def _broadcast(self):
        return Message(
            kind=MessageKind.BROADCAST,
            sender=COORDINATOR,
            receiver=BROADCAST_SITE,
            payload={"level": 3},
        )

    def test_broadcast_logs_one_entry_per_charged_copy(self):
        channel = Channel(num_sites=4)
        channel.enable_log()
        channel.register_coordinator(lambda m: None)
        for site_id in range(4):
            channel.register_site(site_id, lambda m: None)
        channel.send_to_site(self._broadcast())
        assert channel.stats.messages == 4
        assert len(channel.log) == channel.stats.messages
        assert all(m.kind is MessageKind.BROADCAST for m in channel.log)

    def test_log_length_matches_charged_messages_over_a_full_run(self):
        from repro.core import DeterministicCounter
        from repro.streams import assign_sites, random_walk_stream

        factory = DeterministicCounter(3, 0.1)
        network = factory.build_network()
        network.channel.enable_log()
        updates = assign_sites(random_walk_stream(2_000, seed=13), 3)
        for update in updates:
            network.deliver_update(update.time, update.site, update.delta)
        assert network.coordinator.blocks_completed > 0  # broadcasts occurred
        assert len(network.channel.log) == network.stats.messages

    def test_charge_bulk_accounting_matches_record(self):
        channel = Channel(num_sites=1)
        channel.register_coordinator(lambda m: None)
        channel.register_site(0, lambda m: None)
        message = _report({"count": 5})
        channel.charge(MessageKind.REPORT, 3, 3 * message.bits())
        reference = Channel(num_sites=1)
        reference.register_coordinator(lambda m: None)
        reference.register_site(0, lambda m: None)
        for _ in range(3):
            reference.send_to_coordinator(_report({"count": 5}))
        assert channel.stats.messages == reference.stats.messages
        assert channel.stats.bits == reference.stats.bits
        assert channel.stats.by_kind == reference.stats.by_kind


class TestChannelStatsAggregation:
    """ChannelStats.__add__ / merge — how per-shard accounting aggregates."""

    def _stats(self, messages, bits, by_kind):
        from repro.monitoring import ChannelStats

        return ChannelStats(messages=messages, bits=bits, by_kind=by_kind)

    def test_add_combines_counters_and_kinds(self):
        left = self._stats(3, 60, {"report": 2, "reply": 1})
        right = self._stats(5, 100, {"report": 1, "broadcast": 4})
        total = left + right
        assert total.messages == 8
        assert total.bits == 160
        assert total.by_kind == {"report": 3, "reply": 1, "broadcast": 4}

    def test_add_leaves_operands_untouched(self):
        left = self._stats(1, 10, {"report": 1})
        right = self._stats(2, 20, {"reply": 2})
        total = left + right
        total.by_kind["report"] = 99
        assert left.by_kind == {"report": 1}
        assert right.by_kind == {"reply": 2}

    def test_sum_builtin_works(self):
        parts = [self._stats(i, 10 * i, {"report": i}) for i in (1, 2, 3)]
        total = sum(parts)
        assert total.messages == 6
        assert total.bits == 60
        assert total.by_kind == {"report": 6}

    def test_merge_classmethod(self):
        from repro.monitoring import ChannelStats

        parts = [
            self._stats(2, 40, {"report": 2}),
            self._stats(0, 0, {}),
            self._stats(3, 50, {"reply": 3}),
        ]
        total = ChannelStats.merge(parts)
        assert (total.messages, total.bits) == (5, 90)
        assert total.by_kind == {"report": 2, "reply": 3}
        assert ChannelStats.merge([]).messages == 0

    def test_add_rejects_non_stats(self):
        with pytest.raises(TypeError):
            self._stats(1, 10, {}) + 5


class TestMulticast:
    def _channel(self, num_sites=4):
        channel = Channel(num_sites=num_sites)
        received = {i: [] for i in range(num_sites)}
        channel.register_coordinator(lambda m: None)
        for site_id in range(num_sites):
            channel.register_site(
                site_id, (lambda s: lambda m: received[s].append(m))(site_id)
            )
        return channel, received

    def _level(self):
        return Message(
            kind=MessageKind.BROADCAST,
            sender=COORDINATOR,
            receiver=BROADCAST_SITE,
            payload={"level": 3},
            time=7,
        )

    def test_charges_one_copy_per_receiver(self):
        channel, received = self._channel()
        message = self._level()
        channel.multicast(message, [0, 2])
        assert channel.stats.messages == 2
        assert channel.stats.bits == 2 * message.bits()
        assert channel.stats.by_kind == {"broadcast": 2}
        assert received[0] == [message] and received[2] == [message]
        assert received[1] == [] and received[3] == []

    def test_full_receiver_set_matches_broadcast_accounting(self):
        multicast_channel, _ = self._channel()
        broadcast_channel, _ = self._channel()
        message = self._level()
        multicast_channel.multicast(message, [0, 1, 2, 3])
        broadcast_channel.send_to_site(message)
        assert multicast_channel.stats.messages == broadcast_channel.stats.messages
        assert multicast_channel.stats.bits == broadcast_channel.stats.bits
        assert multicast_channel.stats.by_kind == broadcast_channel.stats.by_kind

    def test_logs_one_entry_per_copy(self):
        channel, _ = self._channel()
        channel.enable_log()
        channel.multicast(self._level(), [1, 3])
        assert len(channel.log) == 2

    def test_rejects_empty_duplicate_and_unknown_receivers(self):
        channel, _ = self._channel()
        with pytest.raises(ProtocolError):
            channel.multicast(self._level(), [])
        with pytest.raises(ProtocolError):
            channel.multicast(self._level(), [1, 1])
        with pytest.raises(ProtocolError):
            channel.multicast(self._level(), [0, 9])
