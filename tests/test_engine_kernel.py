"""The span kernel's central contract: closed-form execution is invisible.

``repro.engine.SpanKernel`` owns run segmentation, trigger arithmetic, bulk
accounting and multi-block fast-forwarding for every delivery engine.  These
tests pin its contract from three sides:

* a hypothesis property test asserting bit-for-bit equivalence (estimates,
  message counts, bit counts, per-kind breakdowns) of the batched engine —
  multi-block fast-forwarding included — against per-update delivery, across
  coordinators, stream generators, shard counts and recording strides,
  including streams whose growing value crosses block levels;
* direct evidence that fast-forwarding actually *engages* on the workloads
  it was built for (a counting kernel), so the property test cannot pass
  vacuously;
* the kernel's single fallback path (``SpanKernel.replay``), whose prefix
  semantics must match per-update delivery exactly when a run errors midway.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import CormodeCounter, LiuStyleCounter, NaiveCounter
from repro.core import DeterministicCounter, RandomizedCounter
from repro.engine import DEFAULT_KERNEL, SpanKernel, segment_cuts
from repro.exceptions import StreamError
from repro.monitoring.runner import run_tracking
from repro.monitoring.sharding import build_sharded_network
from repro.streams import (
    BlockedAssignment,
    assign_sites,
    biased_walk_stream,
    nearly_monotone_stream,
    random_walk_stream,
    sawtooth_stream,
)

FACTORIES = {
    "naive": lambda k, seed: NaiveCounter(k),
    "cormode": lambda k, seed: CormodeCounter(k, 0.08),
    "liu": lambda k, seed: LiuStyleCounter(k, 0.08, seed=seed),
    "deterministic": lambda k, seed: DeterministicCounter(k, 0.08),
    "randomized": lambda k, seed: RandomizedCounter(k, 0.08, seed=seed),
}

GENERATORS = {
    # random_walk hovers near zero (long same-level close runs), biased_walk
    # and nearly_monotone grow |f| so runs cross block levels mid-stream.
    "random_walk": lambda n, seed: random_walk_stream(n, seed=seed),
    "sawtooth": lambda n, seed: sawtooth_stream(n, amplitude=30),
    "biased_walk": lambda n, seed: biased_walk_stream(n, drift=0.6, seed=seed),
    "nearly_monotone": lambda n, seed: nearly_monotone_stream(n, seed=seed),
}


def _fingerprint(result):
    """Everything observable about a run: records, totals, kind breakdown."""
    return (
        [
            (r.time, r.true_value, r.estimate, r.messages, r.bits)
            for r in result.records
        ],
        result.total_messages,
        result.total_bits,
        result.messages_by_kind,
    )


class CountingKernel(SpanKernel):
    """A kernel that records how much work multi-block fast-forwarding did."""

    def __init__(self, fast_forward: bool = True) -> None:
        super().__init__(fast_forward=fast_forward)
        self.windows = 0
        self.fast_forwarded_steps = 0

    def fast_forward_closes(self, *args, **kwargs) -> int:
        advanced = super().fast_forward_closes(*args, **kwargs)
        if advanced:
            self.windows += 1
            self.fast_forwarded_steps += advanced
        return advanced


def _attach_kernel(network, kernel):
    for site in network.sites:
        site.span_kernel = kernel


class TestKernelEquivalenceProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        factory_name=st.sampled_from(sorted(FACTORIES)),
        generator_name=st.sampled_from(sorted(GENERATORS)),
        num_sites=st.integers(min_value=1, max_value=6),
        shards=st.integers(min_value=1, max_value=3),
        length=st.integers(min_value=300, max_value=1500),
        record_every=st.sampled_from([1, 7, 100]),
        block_length=st.sampled_from([16, 64, 256]),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_batched_with_fast_forward_is_bit_for_bit(
        self,
        factory_name,
        generator_name,
        num_sites,
        shards,
        length,
        record_every,
        block_length,
        seed,
    ):
        shards = min(shards, num_sites)
        spec = GENERATORS[generator_name](length, seed)
        updates = assign_sites(spec, num_sites, BlockedAssignment(block_length))

        def run(batched):
            factory = FACTORIES[factory_name](num_sites, seed)
            if shards > 1:
                network = build_sharded_network(factory, shards)
            else:
                network = factory.build_network()
            result = run_tracking(
                network, updates, record_every=record_every, batched=batched
            )
            return result, network

        slow, slow_network = run(False)
        fast, fast_network = run(True)
        if shards == 1:
            assert _fingerprint(slow) == _fingerprint(fast)
        else:
            # Root-hop counts legitimately differ with delivery granularity
            # (see the push-granularity note in repro.monitoring.sharding);
            # estimates and the merged shard-local counters must not.
            assert [r.estimate for r in slow.records] == [
                r.estimate for r in fast.records
            ]
            slow_local = slow_network.local_stats
            fast_local = fast_network.local_stats
            assert slow_local.messages == fast_local.messages
            assert slow_local.bits == fast_local.bits
            assert slow_local.by_kind == fast_local.by_kind

    @settings(max_examples=10, deadline=None)
    @given(
        num_sites=st.integers(min_value=1, max_value=5),
        length=st.integers(min_value=400, max_value=1200),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_fast_forward_off_matches_fast_forward_on(self, num_sites, length, seed):
        """The FF toggle changes speed only, never a single counter."""
        spec = random_walk_stream(length, seed=seed)
        updates = assign_sites(spec, num_sites, BlockedAssignment(64))
        results = []
        for fast_forward in (True, False):
            for factory in (
                DeterministicCounter(num_sites, 0.1),
                RandomizedCounter(num_sites, 0.1, seed=seed),
            ):
                network = factory.build_network()
                _attach_kernel(network, SpanKernel(fast_forward=fast_forward))
                results.append(
                    _fingerprint(
                        run_tracking(network, updates, record_every=50, batched=True)
                    )
                )
        on_det, on_rand, off_det, off_rand = results
        assert on_det == off_det
        assert on_rand == off_rand


class TestFastForwardEngages:
    @pytest.mark.parametrize("factory_name", ["deterministic", "randomized"])
    def test_multiblock_windows_cover_most_of_a_low_level_run(self, factory_name):
        """At small k near f = 0, blocks are a handful of updates long and
        almost the whole stream should fast-forward through multi-close
        windows — this is the E17 bottleneck the kernel exists to remove,
        and it keeps the property test from passing vacuously."""
        num_sites = 4
        spec = random_walk_stream(20_000, seed=31)
        updates = assign_sites(spec, num_sites, BlockedAssignment(4_096))
        factory = FACTORIES[factory_name](num_sites, 5)
        network = factory.build_network()
        kernel = CountingKernel()
        _attach_kernel(network, kernel)
        fast = run_tracking(network, updates, record_every=5_000, batched=True)
        # Cross-level fast-forward merges what used to be one window per
        # level band into a handful of long ladders; coverage (below) is the
        # real vacuity guard.
        assert kernel.windows >= 5
        assert kernel.fast_forwarded_steps > len(updates) // 2
        reference = FACTORIES[factory_name](num_sites, 5).track(
            updates, record_every=5_000, batched=False
        )
        assert _fingerprint(reference) == _fingerprint(fast)
        assert network.coordinator.blocks_completed > 100

    def test_level_crossing_rides_the_window(self):
        """A stream that climbs levels still matches per-update exactly —
        the close ladder walks the level schedule inside one window instead
        of cutting at the first close whose boundary leaves the band."""
        num_sites = 2
        spec = biased_walk_stream(6_000, drift=0.7, seed=3)
        updates = assign_sites(spec, num_sites, BlockedAssignment(1_024))
        factory = DeterministicCounter(num_sites, 0.1)
        slow = factory.track(updates, record_every=500, batched=False)
        fast = factory.track(updates, record_every=500, batched=True)
        assert _fingerprint(slow) == _fingerprint(fast)
        # The walk must actually have climbed out of level 0.
        network = factory.build_network()
        run_tracking(network, updates, record_every=500, batched=True)
        assert network.coordinator.level >= 1


class TestKernelFallback:
    def test_non_unit_delta_errors_after_identical_prefix(self):
        """The replay fallback pins prefix semantics: the StreamError for a
        non-unit delta fires with exactly the per-update path's state."""
        factory = DeterministicCounter(1, 0.1)
        times = list(range(1, 41))
        deltas = [1] * 20 + [5] + [1] * 19
        reference = factory.build_network()
        with pytest.raises(StreamError):
            for t, d in zip(times, deltas):
                reference.deliver_update(t, 0, d)
        batched = factory.build_network()
        with pytest.raises(StreamError):
            batched.deliver_batch(0, times, deltas)
        assert reference.stats.messages == batched.stats.messages
        assert reference.stats.bits == batched.stats.bits
        assert reference.estimate() == batched.estimate()

    def test_short_runs_replay_per_update(self):
        spec = random_walk_stream(200, seed=9)
        updates = assign_sites(spec, 1)
        slow = DeterministicCounter(1, 0.1).build_network()
        fast = DeterministicCounter(1, 0.1).build_network()
        for u in updates:
            slow.deliver_update(u.time, u.site, u.delta)
        # Deliver in runs shorter than the fast-path minimum: every one must
        # route through the kernel's replay helper.
        for start in range(0, len(updates), 8):
            run = updates[start : start + 8]
            fast.deliver_batch(0, [u.time for u in run], [u.delta for u in run])
        assert slow.stats.messages == fast.stats.messages
        assert slow.stats.bits == fast.stats.bits
        assert slow.estimate() == fast.estimate()


class TestSegmentationOwnership:
    def test_runner_delegates_to_kernel_segmentation(self):
        from repro.monitoring.runner import _segment_cuts

        sites = np.asarray([0, 0, 1, 1, 1, 0, 2, 2])
        assert _segment_cuts(sites, 3, 4) == segment_cuts(sites, 3, 4)

    def test_cut_positions(self):
        sites = np.asarray([0, 0, 0, 1, 1, 1])
        # Cuts are exclusive end offsets: one after every recording point
        # (global index divisible by record_every), at each site change, and
        # at the chunk end.  With start_index 2, offset 2 is global index 4,
        # so the record cut lands at offset 3 — coinciding with the site cut.
        assert segment_cuts(sites, 2, 4) == [3, 6]
        assert segment_cuts(sites, 0, 2) == [1, 3, 5, 6]

    def test_default_kernel_is_shared_and_fast_forwarding(self):
        site_a = DeterministicCounter(2, 0.1).build_site(0)
        site_b = RandomizedCounter(2, 0.1, seed=1).build_site(1)
        assert site_a.span_kernel is DEFAULT_KERNEL
        assert site_b.span_kernel is DEFAULT_KERNEL
        assert DEFAULT_KERNEL.fast_forward
