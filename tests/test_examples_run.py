"""Smoke tests: every shipped example runs end to end and prints its report.

These keep the examples honest — if the public API changes, the examples break
here rather than on a user's machine.  Each example's ``main()`` is imported
and executed directly (no subprocess) so failures surface with full tracebacks.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_module(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_runs_and_prints(path, capsys):
    module = _load_module(path)
    assert hasattr(module, "main"), f"{path.name} must define main()"
    module.main()
    output = capsys.readouterr().out
    assert len(output.splitlines()) >= 5, f"{path.name} printed almost nothing"


def test_examples_directory_is_complete():
    names = {path.stem for path in EXAMPLE_FILES}
    assert {
        "quickstart",
        "database_monitoring",
        "sensor_network",
        "frequency_monitoring",
        "lower_bound_tour",
    } <= names
