"""The recursive tree's contracts: shape, budgets, accounting, deadbands.

Central claims pinned here:

* the shape vocabulary (levels/fanout/fanouts) normalises consistently and
  rejects contradictions before any network is built;
* the error-budget split policies return valid per-level budgets (non-
  negative, leaf budget positive, summing to at most ``eps``), and the
  default leaf split keeps aggregation exact;
* a tree of any depth keeps every internal node's estimate equal to the
  exact sum of its children (the hypothesis version lives in
  ``tests/test_tree_property.py``), and its per-level accounting decomposes
  the total;
* ``levels=2`` through the tree vocabulary is the legacy sharded hierarchy
  (the bit-for-bit property test lives in ``tests/test_tree_property.py``);
* push and broadcast deadbands suppress traffic and count what they saved.
"""

import pytest

from repro.asynchrony import (
    UniformLatency,
    build_sharded_async_network,
    build_tree_async_network,
    run_tracking_async,
)
from repro.core import DeterministicCounter, RandomizedCounter
from repro.exceptions import ConfigurationError
from repro.monitoring import (
    ChannelStats,
    GeometricSplit,
    LeafSplit,
    ShardedNetwork,
    StridedSharding,
    UniformSplit,
    build_tree_network,
    leaf_groups,
    resolve_epsilon_split,
    resolve_fanouts,
    run_tracking,
)
from repro.streams import (
    RoundRobinAssignment,
    assign_sites,
    monotone_stream,
    random_walk_stream,
)


def _updates(n, k, seed=7):
    return assign_sites(random_walk_stream(n, seed=seed), k, RoundRobinAssignment())


class TestResolveFanouts:
    def test_levels_and_fanout_expand_uniformly(self):
        assert resolve_fanouts(levels=4, fanout=3) == [3, 3, 3]

    def test_levels_one_is_flat(self):
        assert resolve_fanouts(levels=1) == []

    def test_explicit_fanouts_win(self):
        assert resolve_fanouts(fanouts=[4, 2]) == [4, 2]

    def test_levels_must_agree_with_fanouts(self):
        assert resolve_fanouts(levels=3, fanouts=[4, 2]) == [4, 2]
        with pytest.raises(ConfigurationError):
            resolve_fanouts(levels=2, fanouts=[4, 2])

    def test_fanout_and_fanouts_conflict(self):
        with pytest.raises(ConfigurationError):
            resolve_fanouts(fanout=2, fanouts=[2, 2])

    def test_levels_need_a_fanout(self):
        with pytest.raises(ConfigurationError):
            resolve_fanouts(levels=3)

    def test_flat_takes_no_fanout(self):
        with pytest.raises(ConfigurationError):
            resolve_fanouts(levels=1, fanout=2)

    def test_no_shape_at_all(self):
        with pytest.raises(ConfigurationError):
            resolve_fanouts()

    def test_fanout_below_two_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_fanouts(levels=2, fanout=1)


class TestEpsilonSplits:
    def test_leaf_split_concentrates_at_leaves(self):
        assert LeafSplit().split(0.1, 3) == [0.0, 0.0, 0.1]

    def test_uniform_split_is_equal(self):
        budgets = UniformSplit().split(0.3, 3)
        assert budgets == pytest.approx([0.1, 0.1, 0.1])

    def test_geometric_split_sums_to_eps_leaf_largest(self):
        budgets = GeometricSplit(0.5).split(0.07, 3)
        assert sum(budgets) == pytest.approx(0.07)
        assert budgets == pytest.approx([0.01, 0.02, 0.04])

    def test_geometric_ratio_bounds(self):
        with pytest.raises(ConfigurationError):
            GeometricSplit(0.0)
        with pytest.raises(ConfigurationError):
            GeometricSplit(1.0)

    def test_resolve_by_name(self):
        assert isinstance(resolve_epsilon_split("leaf"), LeafSplit)
        assert isinstance(resolve_epsilon_split("uniform"), UniformSplit)
        assert isinstance(resolve_epsilon_split("geometric", 0.3), GeometricSplit)
        with pytest.raises(ConfigurationError):
            resolve_epsilon_split("nope")

    def test_budgets_land_on_the_tree(self):
        net = build_tree_network(
            DeterministicCounter(8, 0.2),
            levels=3,
            fanout=2,
            epsilon_split="geometric",
        )
        # Wrappers at node level l carry the level-l budget as push deadband.
        top = net.shards[0]
        assert top.push_deadband == pytest.approx(0.2 / 7)
        assert top.network.shards[0].push_deadband == pytest.approx(0.4 / 7)
        # Every leaf tracker runs with the leaf budget.
        for leaf in net.leaves():
            assert leaf.network.coordinator.epsilon == pytest.approx(0.8 / 7)

    def test_default_leaf_split_keeps_leaf_epsilon(self):
        net = build_tree_network(DeterministicCounter(8, 0.2), levels=3, fanout=2)
        for leaf in net.leaves():
            assert leaf.network.coordinator.epsilon == 0.2
            assert leaf.push_deadband == 0.0


class TestTreeShape:
    def test_depth_and_leaf_count(self):
        net = build_tree_network(DeterministicCounter(27, 0.1), levels=4, fanout=3)
        assert net.num_levels == 4
        assert len(net.leaves()) == 3 * 3 * 3  # one site per leaf
        assert net.num_sites == 27

    def test_leaf_groups_partition_the_sites(self):
        net = build_tree_network(
            DeterministicCounter(10, 0.1), fanouts=[2, 2]
        )
        groups = leaf_groups(net)
        assert sorted(s for group in groups for s in group) == list(range(10))
        assert all(group for group in groups)

    def test_strided_sharding_composes(self):
        net = build_tree_network(
            DeterministicCounter(8, 0.1),
            levels=3,
            fanout=2,
            sharding=StridedSharding(),
        )
        # Top split strides global ids; the nested splits stride positions
        # within each group.
        assert leaf_groups(net) == [[0, 4], [2, 6], [1, 5], [3, 7]]

    def test_more_leaves_than_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            build_tree_network(DeterministicCounter(7, 0.1), levels=4, fanout=2)

    def test_flat_shape_builds_flat_network(self):
        net = build_tree_network(DeterministicCounter(5, 0.1), levels=1)
        assert not isinstance(net, ShardedNetwork)
        assert net.num_sites == 5

    def test_factory_without_shard_factory_rejected(self):
        class NoShards:
            num_sites = 4
            epsilon = 0.1
            shard_factory = None

        with pytest.raises(ConfigurationError):
            build_tree_network(NoShards(), levels=2, fanout=2)


class TestTreeTracking:
    def test_root_estimate_is_exact_sum_of_leaves(self):
        net = build_tree_network(DeterministicCounter(12, 0.1), fanouts=[3, 2])
        for update in _updates(4000, 12):
            net.deliver_update(update.time, update.site, update.delta)
        total = sum(leaf.network.estimate() for leaf in net.leaves())
        assert net.estimate() == pytest.approx(total)

    def test_level_stats_decompose_total(self):
        net = build_tree_network(DeterministicCounter(12, 0.1), levels=3, fanout=2)
        result = run_tracking(net, _updates(4000, 12), record_every=500)
        merged = ChannelStats.merge(net.level_stats())
        assert merged.messages == result.total_messages
        assert merged.bits == result.total_bits
        assert merged.by_kind == result.messages_by_kind

    def test_level_summary_shape_and_roles(self):
        net = build_tree_network(DeterministicCounter(12, 0.1), levels=3, fanout=2)
        result = run_tracking(net, _updates(3000, 12), record_every=500)
        rows = result.levels
        assert [row["level"] for row in rows] == [0, 1, 2]
        assert [row["role"] for row in rows] == ["aggregate", "aggregate", "leaf"]
        assert rows[0]["nodes"] == 1 and rows[1]["nodes"] == 2
        assert rows[2]["nodes"] == 4
        # Aggregation levels carry only pushes (reports) and level re-sends.
        assert set(rows[0]["messages_by_kind"]) <= {"report", "broadcast"}

    def test_flat_run_has_no_levels_view(self):
        result = DeterministicCounter(4, 0.1).track(_updates(500, 4))
        assert result.levels is None


class TestDeadbands:
    def test_push_deadband_suppresses_and_counts(self):
        exact = build_tree_network(DeterministicCounter(8, 0.1), levels=2, fanout=2)
        damped = build_tree_network(
            DeterministicCounter(8, 0.1),
            levels=2,
            fanout=2,
            epsilon_split="uniform",
        )
        updates = _updates(4000, 8)
        run_tracking(exact, list(updates), record_every=400)
        run_tracking(damped, list(updates), record_every=400)
        suppressed = sum(s.pushes_suppressed for s in damped.shards)
        assert suppressed > 0
        assert (
            damped.root_network.channel.stats.messages
            < exact.root_network.channel.stats.messages
        )
        # The saved pushes are visible in the per-level accounting.
        assert damped.level_summary()[0]["pushes_suppressed"] == suppressed

    def test_uniform_split_error_stays_within_total_budget(self):
        net = build_tree_network(
            DeterministicCounter(8, 0.1),
            levels=3,
            fanout=2,
            epsilon_split="uniform",
        )
        updates = assign_sites(
            monotone_stream(6000), 8, RoundRobinAssignment()
        )
        result = run_tracking(net, updates, record_every=1)
        # End-to-end bound: prod(1 + eps/L) - 1 <= e^eps - 1; allow the
        # deterministic tracker's additive slack at small values by checking
        # violations of the *total* budget over the monotone tail only.
        tail = [r for r in result.records if abs(r.true_value) >= 64]
        assert tail, "stream never reached the asymptotic regime"
        for record in tail:
            bound = ((1 + 0.1 / 3) ** 3 - 1) * abs(record.true_value) + 3
            assert abs(record.estimate - record.true_value) <= bound

    def test_broadcast_deadband_suppresses_level_resends(self):
        exact = build_tree_network(
            DeterministicCounter(8, 0.1), levels=2, fanout=2
        )
        damped = build_tree_network(
            DeterministicCounter(8, 0.1),
            levels=2,
            fanout=2,
            broadcast_deadband=0.5,
        )
        updates = _updates(6000, 8)
        run_tracking(exact, list(updates), record_every=400)
        run_tracking(damped, list(updates), record_every=400)
        root = damped.root_network.coordinator
        assert root.broadcasts_suppressed > 0
        exact_casts = exact.root_network.channel.stats.by_kind.get("broadcast", 0)
        damped_casts = damped.root_network.channel.stats.by_kind.get("broadcast", 0)
        assert damped_casts < exact_casts
        assert (
            damped.level_summary()[0]["broadcasts_suppressed"]
            == root.broadcasts_suppressed
        )

    def test_negative_broadcast_deadband_rejected(self):
        with pytest.raises(ConfigurationError):
            build_tree_network(
                DeterministicCounter(4, 0.1),
                levels=2,
                fanout=2,
                broadcast_deadband=-0.1,
            )


class TestAsyncTree:
    def test_two_level_tree_matches_legacy_async_builder(self):
        updates = _updates(3000, 12)
        latency = UniformLatency(0.0, 4.0)
        legacy = build_sharded_async_network(
            DeterministicCounter(12, 0.05), 4, latency=latency, seed=11
        )
        tree = build_tree_async_network(
            DeterministicCounter(12, 0.05),
            levels=2,
            fanout=4,
            latency=latency,
            seed=11,
        )
        a = run_tracking_async(legacy, list(updates), record_every=100)
        b = run_tracking_async(tree, list(updates), record_every=100)
        assert [
            (r.time, r.estimate, r.messages, r.bits) for r in a.records
        ] == [(r.time, r.estimate, r.messages, r.bits) for r in b.records]
        assert (a.total_messages, a.total_bits, a.final_clock) == (
            b.total_messages,
            b.total_bits,
            b.final_clock,
        )

    def test_deep_tree_settles_on_exact_sum_after_drain(self):
        net = build_tree_async_network(
            RandomizedCounter(12, 0.1, seed=3),
            levels=3,
            fanout=2,
            latency=UniformLatency(0.0, 3.0),
            seed=5,
        )
        result = run_tracking_async(net, _updates(3000, 12), record_every=300)
        total = sum(leaf.network.estimate() for leaf in net.leaves())
        assert result.final_estimate == pytest.approx(total)
        assert result.levels is not None and len(result.levels) == 3

    def test_multi_hop_latency_ages_accumulate_per_level(self):
        net = build_tree_async_network(
            DeterministicCounter(8, 0.1),
            levels=3,
            fanout=2,
            latency=UniformLatency(1.0, 3.0),
            seed=2,
        )
        run_tracking_async(net, _updates(2000, 8), record_every=200)
        # Every level saw deliveries with real in-flight time.
        for channel in net.channel.channels:
            assert channel.delivered_count > 0
