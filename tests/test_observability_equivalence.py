"""Property test: instrumentation observes the protocol without touching it.

The zero-overhead contract from the observability layer's design: every
hook sits behind a single ``if observer is not None`` check and every
observer is strictly read-only, so an instrumented run must be
**bit-for-bit identical** to an uninstrumented one — same recorded
estimates and true values at the same timesteps, same message totals, same
bit totals, same per-kind counts, same per-level accounting, and (for the
asynchronous engine) same staleness aggregates and settled state.

Hypothesis drives arbitrary unit-delta streams through the grid
{per-update, batched, async} x hierarchy levels {1, 2, 3}; attaching a
full registry *and* a trace log must change nothing the protocol reports.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.asynchrony import (
    UniformLatency,
    build_async_network,
    build_sharded_async_network,
    build_tree_async_network,
    run_tracking_async,
)
from repro.core import DeterministicCounter
from repro.monitoring import (
    build_sharded_network,
    build_tree_network,
    run_tracking,
)
from repro.observability import TraceLog, instrument_network
from repro.streams.model import deltas_to_updates

SITES = 4  # divisible by the tree's (2, 2) fanouts
EPSILON = 0.15

unit_deltas = st.lists(st.sampled_from([-1, 1]), min_size=20, max_size=400)
levels = st.sampled_from([1, 2, 3])


def _distribute(deltas):
    sites = [(t - 1) % SITES for t in range(1, len(deltas) + 1)]
    return deltas_to_updates(deltas, sites)


def _sync_network(num_levels):
    factory = DeterministicCounter(SITES, EPSILON)
    if num_levels == 1:
        return factory.build_network()
    if num_levels == 2:
        return build_sharded_network(factory, 2)
    return build_tree_network(factory, fanouts=(2, 2))


def _async_network(num_levels, seed):
    factory = DeterministicCounter(SITES, EPSILON)
    latency = UniformLatency(0.5, 2.0)
    if num_levels == 1:
        return build_async_network(factory, latency=latency, seed=seed)
    if num_levels == 2:
        return build_sharded_async_network(factory, 2, latency=latency, seed=seed)
    return build_tree_async_network(
        factory, fanouts=(2, 2), latency=latency, seed=seed
    )


def _fingerprint(result):
    """Everything a run reports, as one comparable structure."""
    data = {
        "records": [
            (r.time, r.estimate, r.true_value) for r in result.records
        ],
        "messages": result.total_messages,
        "bits": result.total_bits,
        "by_kind": dict(result.messages_by_kind),
        "levels": result.levels,
    }
    if hasattr(result, "final_clock"):
        data["final_clock"] = result.final_clock
        data["final_estimate"] = result.final_estimate
        data["staleness"] = (
            result.staleness.delivered,
            result.staleness.mean_age,
            result.staleness.max_age,
            result.staleness.inflight_highwater,
            result.staleness.reordered,
        )
    return data


class TestInstrumentedRunsAreBitForBit:
    @given(unit_deltas, levels, st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_sync_engines(self, deltas, num_levels, batched):
        updates = _distribute(deltas)
        plain = run_tracking(
            _sync_network(num_levels), updates, record_every=3, batched=batched
        )
        network = _sync_network(num_levels)
        instr = instrument_network(network, trace=TraceLog(capacity=256))
        observed = run_tracking(network, updates, record_every=3, batched=batched)
        assert _fingerprint(observed) == _fingerprint(plain)
        # ... and the registry really did watch the run.
        instr.registry.collect()
        total = sum(
            value
            for suffix, _, value in instr.registry.get(
                "repro_messages_total"
            ).samples()
            if suffix == ""
        )
        assert total == observed.total_messages

    @given(unit_deltas, levels, st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_async_engine(self, deltas, num_levels, seed):
        updates = _distribute(deltas)
        plain = run_tracking_async(
            _async_network(num_levels, seed), updates, record_every=3
        )
        network = _async_network(num_levels, seed)
        instr = instrument_network(network, trace=TraceLog(capacity=256))
        observed = run_tracking_async(network, updates, record_every=3)
        assert _fingerprint(observed) == _fingerprint(plain)
        instr.registry.collect()
        delivered = sum(
            value
            for suffix, _, value in instr.registry.get(
                "repro_deliveries_total"
            ).samples()
            if suffix == ""
        )
        assert delivered == observed.staleness.delivered
