"""Property-based tests (hypothesis) for tracker invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.analysis.bounds import single_site_message_bound
from repro.core import DeterministicCounter, run_single_site
from repro.lowerbounds import DeterministicFlipFamily
from repro.sketches import CountMinSketch
from repro.streams.model import deltas_to_updates

unit_deltas = st.lists(st.sampled_from([-1, 1]), min_size=1, max_size=250)
integer_deltas = st.lists(st.integers(min_value=-30, max_value=30), min_size=1, max_size=250)


class TestDeterministicTrackerProperties:
    @given(
        unit_deltas,
        st.integers(min_value=1, max_value=4),
        st.sampled_from([0.05, 0.1, 0.3]),
    )
    @settings(max_examples=40, deadline=None)
    def test_error_guarantee_holds_on_arbitrary_unit_streams(self, deltas, num_sites, epsilon):
        sites = [(t - 1) % num_sites for t in range(1, len(deltas) + 1)]
        updates = deltas_to_updates(deltas, sites)
        result = DeterministicCounter(num_sites, epsilon).track(updates)
        assert result.error_violations(epsilon) == 0

    @given(unit_deltas, st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_messages_never_exceed_constant_times_updates(self, deltas, num_sites):
        # Per update: <= 1 count report + 1 estimation report, plus <= 3k per
        # block and blocks are at least k updates long -> at most 5 messages
        # per update plus the final partial block's overhead.
        sites = [(t - 1) % num_sites for t in range(1, len(deltas) + 1)]
        updates = deltas_to_updates(deltas, sites)
        result = DeterministicCounter(num_sites, 0.1).track(updates)
        assert result.total_messages <= 5 * len(deltas) + 3 * num_sites


class TestSingleSiteProperties:
    @given(integer_deltas, st.sampled_from([0.05, 0.1, 0.25]))
    @settings(max_examples=60, deadline=None)
    def test_error_and_message_bound(self, deltas, epsilon):
        result = run_single_site(deltas, epsilon)
        assert result.max_relative_error() <= epsilon + 1e-12
        assert result.messages <= single_site_message_bound(epsilon, result.variability) + 1


class TestCountMinProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=300),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_underestimates(self, items, query_item):
        sketch = CountMinSketch(width=32, depth=3, seed=12)
        for item in items:
            sketch.update(item)
        assert sketch.estimate(query_item) >= items.count(query_item)

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_total_preserved(self, items):
        sketch = CountMinSketch(width=16, depth=2, seed=3)
        for item in items:
            sketch.update(item)
        assert sketch.total == len(items)


class TestFlipFamilyProperties:
    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_rank_unrank_roundtrip(self, data):
        n = data.draw(st.integers(min_value=8, max_value=40))
        num_flips = data.draw(st.sampled_from([2, 4, 6]))
        if num_flips > n:
            return
        family = DeterministicFlipFamily(n=n, level=5, num_flips=num_flips)
        index = data.draw(st.integers(min_value=0, max_value=family.size() - 1))
        assert family.index_of(family.flip_times(index)) == index

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_decode_inverts_encode(self, data):
        family = DeterministicFlipFamily(n=30, level=6, num_flips=4)
        index = data.draw(st.integers(min_value=0, max_value=family.size() - 1))
        assert family.decode(family.member_values(index)) == index
