"""Property-based tests (hypothesis) for the recursive tree's contracts.

Two invariants, over arbitrary unit-delta streams:

* **Depth-2 equivalence.**  ``build_tree_network(levels=2, fanout=S)`` is
  *bit-for-bit* the legacy ``build_sharded_network(S)`` — estimates,
  message counts, bit counts, per-kind breakdown, root transcript — across
  the per-update, batched and asynchronous engines.  The tree is a strict
  generalisation of the sharded hierarchy, not a reimplementation.
* **Exact internal sums.**  At any depth and fan-out, every internal node's
  estimate equals the exact sum of its children's estimates (the default
  leaf split reserves the whole budget for the leaf trackers, so
  aggregation is lossless all the way to the root).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asynchrony import (
    build_sharded_async_network,
    build_tree_async_network,
    run_tracking_async,
)
from repro.core import DeterministicCounter, RandomizedCounter
from repro.monitoring import (
    ShardedNetwork,
    StridedSharding,
    build_sharded_network,
    build_tree_network,
    run_tracking,
)
from repro.streams.model import deltas_to_updates

unit_deltas = st.lists(st.sampled_from([-1, 1]), min_size=1, max_size=300)


def _assign(deltas, num_sites, policy_name):
    if policy_name == "round_robin":
        sites = [(t - 1) % num_sites for t in range(1, len(deltas) + 1)]
    elif policy_name == "blocked":
        sites = [((t - 1) // 16) % num_sites for t in range(1, len(deltas) + 1)]
    else:  # single hot site
        sites = [0] * len(deltas)
    return deltas_to_updates(deltas, sites)


def _fingerprint(result):
    return (
        [
            (r.time, r.true_value, r.estimate, r.messages, r.bits)
            for r in result.records
        ],
        result.total_messages,
        result.total_bits,
        result.messages_by_kind,
    )


def _transcript(channel):
    return [
        (m.kind, m.sender, m.receiver, dict(m.payload), m.time) for m in channel.log
    ]


@given(
    deltas=unit_deltas,
    num_sites=st.integers(min_value=2, max_value=8),
    num_shards=st.integers(min_value=2, max_value=8),
    policy_name=st.sampled_from(["round_robin", "blocked", "hot"]),
    batched=st.booleans(),
    randomized=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_two_level_tree_is_bitwise_the_sharded_network(
    deltas, num_sites, num_shards, policy_name, batched, randomized
):
    num_shards = min(num_shards, num_sites)
    updates = _assign(deltas, num_sites, policy_name)

    def factory():
        return (
            RandomizedCounter(num_sites, 0.1, seed=7)
            if randomized
            else DeterministicCounter(num_sites, 0.1)
        )

    legacy = build_sharded_network(factory(), num_shards)
    legacy.channel.enable_log()
    tree = build_tree_network(factory(), levels=2, fanout=num_shards)
    tree.channel.enable_log()

    a = run_tracking(legacy, list(updates), record_every=13, batched=batched)
    b = run_tracking(tree, list(updates), record_every=13, batched=batched)
    assert _fingerprint(a) == _fingerprint(b)
    assert _transcript(tree.root_network.channel) == _transcript(
        legacy.root_network.channel
    )
    for left, right in zip(legacy.shards, tree.shards):
        assert _transcript(right.network.channel) == _transcript(
            left.network.channel
        )


@given(
    deltas=unit_deltas,
    num_shards=st.integers(min_value=2, max_value=6),
    latency_scale=st.sampled_from([0.0, 2.0, 8.0]),
    randomized=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_two_level_async_tree_is_bitwise_the_sharded_async_network(
    deltas, num_shards, latency_scale, randomized
):
    from repro.asynchrony import UniformLatency, ZERO_LATENCY

    num_sites = 8
    updates = _assign(deltas, num_sites, "round_robin")
    latency = (
        ZERO_LATENCY if latency_scale == 0.0 else UniformLatency(0.0, latency_scale)
    )

    def factory():
        return (
            RandomizedCounter(num_sites, 0.1, seed=3)
            if randomized
            else DeterministicCounter(num_sites, 0.1)
        )

    legacy = build_sharded_async_network(
        factory(), num_shards, latency=latency, seed=19
    )
    tree = build_tree_async_network(
        factory(), levels=2, fanout=num_shards, latency=latency, seed=19
    )
    a = run_tracking_async(legacy, list(updates), record_every=17)
    b = run_tracking_async(tree, list(updates), record_every=17)
    assert _fingerprint(a) == _fingerprint(b)
    assert a.final_clock == b.final_clock


def _check_internal_sums(network):
    """Every internal node's estimate is the exact sum of its children's."""
    assert isinstance(network, ShardedNetwork)
    children = [shard.network.estimate() for shard in network.shards]
    assert network.estimate() == sum(children)
    for shard in network.shards:
        if isinstance(shard.network, ShardedNetwork):
            _check_internal_sums(shard.network)


@given(
    deltas=unit_deltas,
    fanouts=st.lists(st.integers(min_value=2, max_value=3), min_size=1, max_size=3),
    policy_name=st.sampled_from(["round_robin", "blocked", "hot"]),
    strided=st.booleans(),
    randomized=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_internal_nodes_sum_exactly_at_any_depth(
    deltas, fanouts, policy_name, strided, randomized
):
    num_leaves = 1
    for fan in fanouts:
        num_leaves *= fan
    num_sites = num_leaves + 3
    updates = _assign(deltas, num_sites, policy_name)
    factory = (
        RandomizedCounter(num_sites, 0.1, seed=5)
        if randomized
        else DeterministicCounter(num_sites, 0.1)
    )
    network = build_tree_network(
        factory,
        fanouts=fanouts,
        sharding=StridedSharding() if strided else None,
    )
    for update in updates:
        network.deliver_update(update.time, update.site, update.delta)
        _check_internal_sums(network)
