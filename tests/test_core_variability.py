"""Tests for the variability parameter (Section 2)."""

import math

import pytest

from repro.core.variability import (
    VariabilityTracker,
    f1_variability,
    variability,
    variability_increment,
    variability_increments,
)
from repro.exceptions import StreamError
from repro.streams import monotone_stream, random_walk_stream, sign_alternating_stream


def harmonic(n):
    return sum(1.0 / i for i in range(1, n + 1))


class TestVariabilityIncrement:
    def test_zero_value_counts_one(self):
        assert variability_increment(0, -1) == 1.0
        assert variability_increment(0, 0) == 1.0

    def test_zero_delta_nonzero_value(self):
        assert variability_increment(5, 0) == 0.0

    def test_capped_at_one(self):
        assert variability_increment(1, 10) == 1.0
        assert variability_increment(-1, -10) == 1.0

    def test_ratio_below_one(self):
        assert variability_increment(10, 1) == pytest.approx(0.1)
        assert variability_increment(-10, -1) == pytest.approx(0.1)
        assert variability_increment(4, -2) == pytest.approx(0.5)


class TestVariability:
    def test_monotone_stream_is_harmonic(self):
        n = 500
        assert variability(monotone_stream(n).deltas) == pytest.approx(harmonic(n))

    def test_sign_alternating_is_linear(self):
        n = 200
        assert variability(sign_alternating_stream(n).deltas) == pytest.approx(float(n))

    def test_start_value_matters(self):
        # Starting at 100, a single +1 update contributes 1/101.
        assert variability([1], start=100) == pytest.approx(1.0 / 101.0)

    def test_empty_stream(self):
        assert variability([]) == 0.0

    def test_increments_sum_to_total(self):
        deltas = random_walk_stream(300, seed=1).deltas
        assert sum(variability_increments(deltas)) == pytest.approx(variability(deltas))

    def test_bounded_by_length(self):
        deltas = random_walk_stream(1_000, seed=2).deltas
        assert 0.0 <= variability(deltas) <= 1_000.0

    def test_monotone_far_below_length(self):
        n = 10_000
        assert variability(monotone_stream(n).deltas) < 0.01 * n


class TestF1Variability:
    def test_insert_only_is_harmonic(self):
        f1_values = list(range(1, 101))
        assert f1_variability(f1_values) == pytest.approx(harmonic(100))

    def test_zero_counts_one(self):
        assert f1_variability([1, 0, 1, 0]) == pytest.approx(1.0 + 1.0 + 1.0 + 1.0)

    def test_rejects_negative_f1(self):
        with pytest.raises(StreamError):
            f1_variability([1, -1])


class TestVariabilityTracker:
    def test_matches_offline_computation(self):
        deltas = random_walk_stream(2_000, seed=3).deltas
        tracker = VariabilityTracker()
        tracker.update_many(deltas)
        assert tracker.total == pytest.approx(variability(deltas))
        assert tracker.time == 2_000
        assert tracker.value == sum(deltas)

    def test_update_returns_increment(self):
        tracker = VariabilityTracker()
        assert tracker.update(1) == 1.0  # f = 1, |delta/f| = 1
        assert tracker.update(1) == pytest.approx(0.5)
        assert tracker.last_increment == pytest.approx(0.5)

    def test_positive_and_negative_mass(self):
        tracker = VariabilityTracker()
        tracker.update_many([1, 1, -1, 1, -1, -1])
        assert tracker.positive_mass == 3
        assert tracker.negative_mass == 3
        assert tracker.value == 0

    def test_zero_count(self):
        tracker = VariabilityTracker()
        tracker.update_many([1, -1, 1, -1])
        assert tracker.zero_count == 2

    def test_start_value(self):
        tracker = VariabilityTracker(start=10)
        tracker.update(1)
        assert tracker.value == 11
        assert tracker.total == pytest.approx(1.0 / 11.0)


class TestTheorem21MonotoneBound:
    """Monotone and nearly monotone streams have logarithmic variability."""

    def test_monotone_bound(self):
        n = 4_096
        v = variability(monotone_stream(n).deltas)
        assert v <= 1.0 + math.log(n)

    def test_monotone_variability_grows_logarithmically(self):
        small = variability(monotone_stream(1_000).deltas)
        large = variability(monotone_stream(8_000).deltas)
        # Eight times the length adds about log(8) ~ 2.08 to the variability.
        assert large - small == pytest.approx(math.log(8.0), abs=0.05)
