"""Live site migration: exact handoff, visible cost, strict preconditions.

The headline claim: after ``migrate_site`` moves a site between leaf
shards, the destination leaf behaves *bit-for-bit* as if the migrated site
had lived there from the handoff point onward — same coordinator state,
same site states, same estimates and same post-handoff traffic as a
reference leaf bootstrapped from the identical checkpoint and fed the
identical suffix substream.  Alongside that: global site ids stay stable,
the root's merged view stays the exact sum of the leaves, the handoff's
cost is charged on the real channels (and itemised in the report), and the
protocol refuses the configurations it cannot serve exactly.
"""

import pytest

from repro.asynchrony import UniformLatency, build_tree_async_network
from repro.baselines import CormodeCounter, NaiveCounter
from repro.core import DeterministicCounter, RandomizedCounter
from repro.exceptions import ConfigurationError, ProtocolError
from repro.monitoring import (
    ChannelStats,
    build_sharded_network,
    build_tree_network,
    leaf_groups,
    migrate_site,
)
from repro.streams import RoundRobinAssignment, assign_sites, random_walk_stream


def _updates(n, k, seed=7):
    return list(
        assign_sites(random_walk_stream(n, seed=seed), k, RoundRobinAssignment())
    )


def _site_totals(updates, k):
    values = [0] * k
    counts = [0] * k
    for update in updates:
        values[update.site] += update.delta
        counts[update.site] += 1
    return values, counts


def _leaf_state(network):
    """Full observable state of a flat leaf network, for bitwise comparison."""
    coordinator = network.coordinator
    return (
        coordinator.level,
        coordinator.boundary_value,
        coordinator.boundary_time,
        coordinator.reported_updates,
        network.estimate(),
        [
            (site.level, site.count_since_report, site.block_value_change)
            for site in network.sites
        ],
    )


class TestExactHandoff:
    @pytest.mark.parametrize("randomized", [False, True])
    def test_dest_leaf_is_bitwise_a_native_resident(self, randomized):
        """After the handoff, the dest leaf == a leaf the site always lived in.

        Reference: a standalone leaf over the destination's new membership,
        bootstrapped from the same checkpoint, fed the same suffix.
        """
        k = 6
        factory = (
            RandomizedCounter(k, 0.1, seed=11)
            if randomized
            else DeterministicCounter(k, 0.1)
        )
        net = build_tree_network(factory, levels=2, fanout=2)
        updates = _updates(5000, k)
        prefix, suffix = updates[:2500], updates[2500:]
        for update in prefix:
            net.deliver_update(update.time, update.site, update.delta)

        report = migrate_site(net, 1, dest_leaf=1, time=prefix[-1].time)
        assert report.site_id == 1
        assert (report.source_leaf, report.dest_leaf) == (0, 1)

        group = leaf_groups(net)[1]
        assert group == [3, 4, 5, 1]
        values, counts = _site_totals(prefix, k)

        # The reference leaf: same factory recipe, same checkpoint.
        ref_factory = factory.shard_factory(len(group), 1)
        ref = ref_factory.build_network()
        ref_factory.bootstrap_network(
            ref,
            [values[s] for s in group],
            [counts[s] for s in group],
        )
        dest = net.leaves()[1].network
        assert _leaf_state(dest) == _leaf_state(ref)
        before = ChannelStats.merge([dest.channel.stats])

        for update in suffix:
            net.deliver_update(update.time, update.site, update.delta)
            if update.site in group:
                ref.deliver_update(
                    update.time, group.index(update.site), update.delta
                )
            assert dest.estimate() == ref.estimate()

        assert _leaf_state(dest) == _leaf_state(ref)
        # Post-handoff traffic on the adopted channel == the reference's
        # whole-life traffic (the adopted counters only shift the baseline).
        assert (
            dest.channel.stats.messages - before.messages
            == ref.channel.stats.messages
        )
        assert dest.channel.stats.bits - before.bits == ref.channel.stats.bits

    def test_root_stays_exact_and_ids_stable_across_depths(self):
        k = 12
        net = build_tree_network(DeterministicCounter(k, 0.1), fanouts=[2, 3])
        updates = _updates(6000, k)
        prefix, suffix = updates[:3000], updates[3000:]
        for update in prefix:
            net.deliver_update(update.time, update.site, update.delta)
        migrate_site(net, 0, dest_leaf=5, time=prefix[-1].time)
        # Global ids keep addressing the same logical sites.
        assert 0 in leaf_groups(net)[5]
        for update in suffix:
            net.deliver_update(update.time, update.site, update.delta)
        assert net.estimate() == sum(
            leaf.network.estimate() for leaf in net.leaves()
        )
        values, _ = _site_totals(updates, k)
        eps = 0.1
        assert abs(net.estimate() - sum(values)) <= eps * abs(sum(values)) + k

    def test_naive_counter_migrates_exactly(self):
        k = 4
        net = build_tree_network(NaiveCounter(k), levels=2, fanout=2)
        updates = _updates(2000, k)
        prefix, suffix = updates[:1000], updates[1000:]
        for update in prefix:
            net.deliver_update(update.time, update.site, update.delta)
        migrate_site(net, 0, dest_leaf=1, time=prefix[-1].time)
        for update in suffix:
            net.deliver_update(update.time, update.site, update.delta)
        values, _ = _site_totals(updates, k)
        assert net.estimate() == sum(values)

    def test_migration_works_on_legacy_sharded_builder(self):
        net = build_sharded_network(DeterministicCounter(8, 0.1), 4)
        for update in _updates(1000, 8):
            net.deliver_update(update.time, update.site, update.delta)
        report = migrate_site(net, 2, dest_leaf=3, time=1000)
        assert report.dest_leaf == 3
        assert 2 in leaf_groups(net)[3]


class TestHandoffCost:
    def test_report_itemises_what_the_channels_charged(self):
        k = 8
        net = build_tree_network(DeterministicCounter(k, 0.1), fanouts=[2, 2])
        updates = _updates(3000, k)
        for update in updates:
            net.deliver_update(update.time, update.site, update.delta)
        total_before = ChannelStats.merge(net.level_stats())
        # Site 0: leaf 0 (subtree 0) -> leaf 3 (subtree 1): the two leaf
        # checkpoints plus three aggregator levels crossed (both mid-level
        # nodes and the root).
        report = migrate_site(net, 0, dest_leaf=3, time=3000)
        total_after = ChannelStats.merge(net.level_stats())
        assert report.checkpoint_messages == 3 * (1 + 3)
        assert report.transfer_hops == 3
        assert (
            report.handoff_messages
            == report.checkpoint_messages + report.transfer_hops
        )
        # Channels also carry the re-register refresh pushes (one report per
        # wrapper on the two affected paths: both leaves + both mid nodes),
        # which are ordinary protocol traffic, not handoff bookkeeping.
        refresh_pushes = 4
        assert (
            total_after.messages - total_before.messages
            == report.handoff_messages + refresh_pushes
        )
        assert total_after.bits - total_before.bits > report.handoff_bits
        assert report.handoff_bits > 0

    def test_intra_subtree_move_crosses_fewer_levels(self):
        k = 8
        net = build_tree_network(DeterministicCounter(k, 0.1), fanouts=[2, 2])
        for update in _updates(1000, k):
            net.deliver_update(update.time, update.site, update.delta)
        # Leaf 0 -> leaf 1 share their mid-level parent; only that node and
        # the root see the transfer.
        report = migrate_site(net, 0, dest_leaf=1, time=1000)
        assert report.transfer_hops == 2


class TestAsyncMigration:
    def test_drain_then_exact_handoff_under_jitter(self):
        k = 8
        net = build_tree_async_network(
            DeterministicCounter(k, 0.1),
            levels=3,
            fanout=2,
            latency=UniformLatency(0.0, 4.0),
            seed=13,
        )
        updates = _updates(4000, k)
        prefix, suffix = updates[:2000], updates[2000:]
        for update in prefix:
            net.deliver_update(update.time, update.site, update.delta)
        report = migrate_site(net, 1, dest_leaf=2, time=prefix[-1].time)
        assert report.transfer_hops >= 2
        for update in suffix:
            net.deliver_update(update.time, update.site, update.delta)
        net.drain()
        # Once drained, aggregation is exact again all the way up.
        assert net.estimate() == sum(
            leaf.network.estimate() for leaf in net.leaves()
        )

    def test_async_migration_preserves_cumulative_accounting(self):
        k = 4
        net = build_tree_async_network(
            DeterministicCounter(k, 0.1),
            levels=2,
            fanout=2,
            latency=UniformLatency(0.0, 2.0),
            seed=7,
        )
        for update in _updates(1500, k):
            net.deliver_update(update.time, update.site, update.delta)
        # Settle first so the measured delta is the migration's alone (the
        # drain inside migrate_site lands in-flight messages, whose
        # deliveries trigger ordinary protocol responses).
        net.drain()
        before = ChannelStats.merge(net.level_stats())
        report = migrate_site(net, 0, dest_leaf=1, time=1500)
        after = ChannelStats.merge(net.level_stats())
        # Handoff traffic plus one refresh push per affected leaf wrapper.
        assert after.messages - before.messages == report.handoff_messages + 2


class TestRefusals:
    def _net(self, k=6):
        net = build_tree_network(DeterministicCounter(k, 0.1), levels=2, fanout=2)
        for update in _updates(500, k):
            net.deliver_update(update.time, update.site, update.delta)
        return net

    def test_refuses_while_transcript_logging(self):
        net = self._net()
        net.channel.enable_log()
        with pytest.raises(ProtocolError, match="transcript"):
            migrate_site(net, 0, dest_leaf=1)

    def test_refuses_unknown_site(self):
        with pytest.raises(ProtocolError, match="does not exist"):
            migrate_site(self._net(), 99, dest_leaf=1)

    def test_refuses_same_leaf(self):
        with pytest.raises(ConfigurationError, match="already lives"):
            migrate_site(self._net(), 0, dest_leaf=0)

    def test_refuses_bad_destination(self):
        with pytest.raises(ConfigurationError, match="out of range"):
            migrate_site(self._net(), 0, dest_leaf=5)

    def test_refuses_emptying_a_leaf(self):
        net = build_tree_network(DeterministicCounter(2, 0.1), levels=2, fanout=2)
        with pytest.raises(ConfigurationError, match="last site"):
            migrate_site(net, 0, dest_leaf=1)

    def test_refuses_flat_network(self):
        flat = DeterministicCounter(4, 0.1).build_network()
        with pytest.raises(ConfigurationError, match="top-level"):
            migrate_site(flat, 0, dest_leaf=1)

    def test_refuses_nested_subtree(self):
        net = build_tree_network(DeterministicCounter(8, 0.1), fanouts=[2, 2])
        with pytest.raises(ConfigurationError, match="top-level"):
            migrate_site(net.shards[0].network, 0, dest_leaf=1)

    def test_refuses_tracker_without_bootstrap(self):
        net = build_tree_network(CormodeCounter(4, 0.1), levels=2, fanout=2)
        for update in _updates(200, 4):
            net.deliver_update(update.time, update.site, update.delta)
        with pytest.raises(ConfigurationError, match="bootstrap_network"):
            migrate_site(net, 0, dest_leaf=1)
