"""The ``loss=0`` identity: an inert faulty transport IS the plain async engine.

The fault subsystem's bridge-back contract, mirroring the zero-latency
anchor in ``tests/test_async_equivalence.py``: a :class:`FaultyChannel`
with a zero-loss plan delegates wholly to :class:`AsyncChannel`, so a run
over it must be **bit-for-bit** identical to the plain asynchronous engine —
per-record estimates, message and bit totals, per-kind breakdowns,
staleness statistics, and the full per-channel transcript (message order
and content) — across flat, sharded and tree topologies and both core
algorithms.  Anything less and the lossy experiments would not be anchored
to the lossless ones they are compared against.
"""

import pytest

from repro.asynchrony import (
    UniformLatency,
    build_async_network,
    build_sharded_async_network,
    build_tree_async_network,
    run_tracking_async,
)
from repro.core import DeterministicCounter, RandomizedCounter
from repro.faults import FaultPlan, FaultyChannel
from repro.observability.instrument import _walk
from repro.streams import RoundRobinAssignment, assign_sites, random_walk_stream

EPSILON = 0.1
NUM_SITES = 6

FACTORIES = {
    "deterministic": lambda: DeterministicCounter(NUM_SITES, EPSILON),
    "randomized": lambda: RandomizedCounter(NUM_SITES, EPSILON, seed=13),
}

TOPOLOGIES = {
    "flat": lambda factory, faults: build_async_network(
        factory, latency=UniformLatency(0.5, 2.0), seed=3, faults=faults
    ),
    "shards3": lambda factory, faults: build_sharded_async_network(
        factory, 3, latency=UniformLatency(0.5, 2.0), seed=3, faults=faults
    ),
    "levels3": lambda factory, faults: build_tree_async_network(
        factory,
        levels=3,
        fanout=2,
        latency=UniformLatency(0.5, 2.0),
        seed=3,
        faults=faults,
    ),
}


def _updates():
    return list(
        assign_sites(
            random_walk_stream(2_500, seed=5), NUM_SITES, RoundRobinAssignment()
        )
    )


def _enable_logs(network):
    for channel, _coordinator, _level in _walk(network):
        channel.enable_log()


def _transcripts(network):
    """Per-level charged transcripts, one entry per transmission."""
    out = []
    for channel, _coordinator, level in _walk(network):
        out.append(
            (
                level,
                [
                    (m.kind, m.sender, m.receiver, dict(m.payload), m.time)
                    for m in channel.log
                ],
            )
        )
    return out


def _fingerprint(result):
    return (
        [
            (r.time, r.true_value, r.estimate, r.messages, r.bits)
            for r in result.records
        ],
        result.total_messages,
        result.total_bits,
        result.messages_by_kind,
        result.final_estimate,
        result.final_clock,
        result.staleness.mean_age,
        result.staleness.max_age,
        result.staleness.inflight_highwater,
        result.staleness.reordered,
        result.dropped,
        result.retransmitted,
        result.duplicates,
    )


class TestZeroLossIdentity:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("algorithm", sorted(FACTORIES))
    def test_bit_for_bit_identical_to_plain_async(self, topology, algorithm):
        build = TOPOLOGIES[topology]
        factory = FACTORIES[algorithm]

        plain = build(factory(), None)
        _enable_logs(plain)
        plain_result = run_tracking_async(plain, _updates(), record_every=17)

        inert = build(factory(), FaultPlan(loss=0.0, seed=99))
        _enable_logs(inert)
        assert any(
            isinstance(channel, FaultyChannel)
            for channel, _, _ in _walk(inert)
        )
        inert_result = run_tracking_async(inert, _updates(), record_every=17)

        assert _fingerprint(inert_result) == _fingerprint(plain_result)
        assert _transcripts(inert) == _transcripts(plain)

    def test_every_channel_of_the_inert_build_is_faulty_and_inert(self):
        network = TOPOLOGIES["levels3"](
            FACTORIES["deterministic"](), FaultPlan(loss=0.0)
        )
        for channel, _coordinator, _level in _walk(network):
            assert isinstance(channel, FaultyChannel)
            assert channel.supports_span_events
