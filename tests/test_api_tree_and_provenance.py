"""Spec/CLI layer of the tree refactor: topology axis, provenance, workers.

Pins the contracts the experiment API added alongside the recursive tree:

* ``topology.levels/fanout/fanouts`` validate as one vocabulary (and refuse
  to mix with the legacy ``shards`` axis), round-trip through JSON, and
  dispatch to the tree builders on both transports — with ``levels=2``
  producing the same run as the equivalent ``shards`` spec;
* every executed spec is stamped with provenance (canonical spec hash +
  library version) that survives into ``summary()`` and the CLI's JSON;
* ``Sweep.run(workers=n)`` returns the same points as the serial runner,
  in grid order, and the ``--workers`` plumbing reaches ``repro run``.
"""

import json

import pytest

import repro
from repro.api import (
    RunSpec,
    SourceSpec,
    Sweep,
    TopologySpec,
    TrackerSpec,
    TransportSpec,
)
from repro.cli import main
from repro.exceptions import ConfigurationError, ProtocolError


def _spec(**kwargs) -> RunSpec:
    defaults = dict(
        source=SourceSpec(stream="random_walk", length=400, seed=0, sites=8),
        tracker=TrackerSpec(name="deterministic", epsilon=0.2),
        record_every=20,
    )
    defaults.update(kwargs)
    return RunSpec(**defaults)


def _fingerprint(result):
    return (
        [
            (r.time, r.true_value, r.estimate, r.messages, r.bits)
            for r in result.records
        ],
        result.total_messages,
        result.total_bits,
        result.messages_by_kind,
    )


class TestTopologyValidation:
    def test_tree_vocabulary_validates(self):
        _spec(topology=TopologySpec(levels=3, fanout=2)).validate()
        _spec(topology=TopologySpec(fanouts=[2, 2])).validate()

    def test_tree_refuses_legacy_shards_axis(self):
        with pytest.raises(ProtocolError, match="levels=2"):
            _spec(topology=TopologySpec(shards=2, levels=3, fanout=2)).validate()

    def test_unknown_split_policy_rejected(self):
        with pytest.raises(ValueError, match="epsilon_split"):
            _spec(
                topology=TopologySpec(levels=2, fanout=2, epsilon_split="nope")
            ).validate()

    def test_split_ratio_bounds(self):
        with pytest.raises(ValueError, match="split_ratio"):
            _spec(
                topology=TopologySpec(
                    levels=2, fanout=2, epsilon_split="geometric", split_ratio=1.0
                )
            ).validate()

    def test_negative_deadband_rejected(self):
        with pytest.raises(ValueError, match="broadcast_deadband"):
            _spec(
                topology=TopologySpec(levels=2, fanout=2, broadcast_deadband=-0.1)
            ).validate()

    def test_more_leaves_than_sites_rejected(self):
        with pytest.raises(ValueError, match="sites"):
            _spec(topology=TopologySpec(levels=5, fanout=2)).validate()

    def test_tree_fields_round_trip(self):
        spec = _spec(
            topology=TopologySpec(
                fanouts=[2, 2], epsilon_split="geometric", split_ratio=0.3
            )
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec


class TestTreeDispatch:
    def test_levels_two_matches_legacy_shards_spec(self):
        legacy = _spec(topology=TopologySpec(shards=4)).run()
        tree = _spec(topology=TopologySpec(levels=2, fanout=4)).run()
        assert _fingerprint(legacy) == _fingerprint(tree)

    def test_three_level_run_reports_per_level_accounting(self):
        result = _spec(topology=TopologySpec(levels=3, fanout=2)).run()
        assert result.levels is not None and len(result.levels) == 3
        rows = result.summary(0.2)["levels"]
        assert [row["level"] for row in rows] == [0, 1, 2]
        assert sum(row["messages"] for row in rows) == result.total_messages

    def test_async_tree_runs_and_reports_levels(self):
        result = _spec(
            topology=TopologySpec(levels=3, fanout=2),
            transport=TransportSpec(mode="async", latency="uniform", scale=2.0),
        ).run()
        assert result.levels is not None and len(result.levels) == 3
        assert result.final_clock >= 0

    def test_tree_only_knobs_on_legacy_shards_engage_tree_builder(self):
        result = _spec(
            topology=TopologySpec(shards=2, epsilon_split="uniform")
        ).run()
        assert result.levels is not None and len(result.levels) == 2


class TestProvenance:
    def test_spec_hash_is_stable_and_sensitive(self):
        a, b = _spec(), _spec()
        assert a.spec_hash() == b.spec_hash()
        assert len(a.spec_hash()) == 64
        changed = _spec(record_every=21)
        assert changed.spec_hash() != a.spec_hash()

    def test_run_stamps_provenance_into_summary(self):
        spec = _spec()
        result = spec.run()
        assert result.provenance == {
            "spec_hash": spec.spec_hash(),
            "repro_version": repro.__version__,
        }
        summary = result.summary(0.2)
        assert summary["provenance"]["spec_hash"] == spec.spec_hash()
        json.dumps(summary)

    def test_sweep_points_each_carry_their_own_hash(self):
        points = Sweep(_spec(), {"tracker.name": ["naive", "deterministic"]}).run()
        hashes = {p.result.provenance["spec_hash"] for p in points}
        assert len(hashes) == 2
        for point in points:
            assert point.result.provenance["spec_hash"] == point.spec.spec_hash()


class TestSweepWorkers:
    def test_parallel_run_matches_serial_in_grid_order(self):
        sweep = Sweep(
            _spec(),
            {"tracker.name": ["naive", "deterministic"], "record_every": [20, 40]},
        )
        serial = sweep.run()
        parallel = sweep.run(workers=2)
        assert [p.overrides for p in parallel] == [p.overrides for p in serial]
        for a, b in zip(serial, parallel):
            assert _fingerprint(a.result) == _fingerprint(b.result)
            assert a.result.provenance == b.result.provenance

    def test_workers_below_one_rejected(self):
        sweep = Sweep(_spec(), {"record_every": [20, 40]})
        with pytest.raises(ConfigurationError, match="workers"):
            sweep.run(workers=0)


class TestCliTree:
    def test_tracking_accepts_tree_flags(self, capsys):
        assert (
            main(
                [
                    "tracking",
                    "--stream",
                    "biased_walk",
                    "--length",
                    "1500",
                    "--sites",
                    "8",
                    "--levels",
                    "3",
                    "--fanout",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "levels=3 fanout=2" in out

    def test_latency_accepts_tree_flags(self, capsys):
        assert (
            main(
                [
                    "latency",
                    "--stream",
                    "biased_walk",
                    "--length",
                    "1200",
                    "--sites",
                    "8",
                    "--levels",
                    "2",
                    "--fanout",
                    "4",
                    "--scales",
                    "0",
                    "2",
                    "--record-every",
                    "50",
                ]
            )
            == 0
        )
        assert "levels=2 fanout=4" in capsys.readouterr().out


class TestCliRunWorkers:
    def _write_spec(self, tmp_path, name, **overrides):
        spec = _spec().with_overrides(overrides)
        path = tmp_path / name
        spec.save(path)
        return str(path), spec

    def test_single_config_output_carries_provenance(self, tmp_path, capsys):
        path, spec = self._write_spec(tmp_path, "a.json")
        assert main(["run", "--config", path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["provenance"]["spec_hash"] == spec.spec_hash()
        assert payload["result"]["provenance"]["repro_version"] == repro.__version__

    def test_multiple_configs_run_in_a_pool_and_print_an_array(
        self, tmp_path, capsys
    ):
        path_a, spec_a = self._write_spec(tmp_path, "a.json")
        path_b, spec_b = self._write_spec(tmp_path, "b.json", **{"source.seed": 9})
        assert (
            main(
                [
                    "run",
                    "--config",
                    path_a,
                    "--config",
                    path_b,
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 2
        assert payload[0]["result"]["provenance"]["spec_hash"] == spec_a.spec_hash()
        assert payload[1]["result"]["provenance"]["spec_hash"] == spec_b.spec_hash()
        assert payload[0]["result"]["provenance"] != payload[1]["result"]["provenance"]

    def test_tree_spec_runs_through_cli(self, tmp_path, capsys):
        path, _ = self._write_spec(
            tmp_path, "tree.json", **{"topology.fanouts": [2, 2]}
        )
        assert main(["run", "--config", path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["level"] for row in payload["result"]["levels"]] == [0, 1, 2]
