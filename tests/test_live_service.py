"""The live tracker service: push API, alerts, HTTP exposition, socket feed.

The service's headline contract is *same protocol, different clock*: a
:class:`LiveTracker` fed update-by-update over the push API must land on
exactly the estimate, message count and bit count the offline per-update
engine reports for the identical stream, and its ``/metrics`` scrape must
carry those numbers in Prometheus text format.  Around that: the live spec
axis (``source.live``) refuses batch entry points, alerts fire on error
and value-threshold crossings, the feed's line protocol tolerates garbage,
and the whole server stands up on ephemeral ports and tears down cleanly —
including driven end-to-end through ``repro serve`` in-process.
"""

import json
import socket
import threading
import urllib.request

import pytest

from repro.api import RunSpec
from repro.exceptions import ConfigurationError, ProtocolError
from repro.observability import LiveTracker, LiveTrackerServer, TraceLog
from repro.observability.live import METRICS_CONTENT_TYPE, parse_feed_line

SITES = 6
LENGTH = 800


def _spec(**overrides):
    data = {
        "source": {"stream": "random_walk", "length": LENGTH, "sites": SITES,
                   "seed": 11},
        "tracker": {"name": "deterministic", "epsilon": 0.1},
    }
    data.update(overrides)
    return RunSpec.from_dict(data)


def _live_spec(**source_overrides):
    source = {"live": True, "sites": SITES, "seed": 11}
    source.update(source_overrides)
    return RunSpec.from_dict(
        {"source": source, "tracker": {"name": "deterministic", "epsilon": 0.1}}
    )


def _stream_updates(spec):
    """The spec's generator workload as (time, site, delta) triples."""
    built = spec.build()
    return [(u.time, u.site, u.delta) for u in built.updates]


class TestFeedLineProtocol:
    def test_parses_whitespace_and_commas(self):
        assert parse_feed_line("3 1 -1") == (3, 1, -1)
        assert parse_feed_line(" 7,2,1 ") == (7, 2, 1)

    def test_skips_blanks_and_comments(self):
        assert parse_feed_line("") is None
        assert parse_feed_line("   ") is None
        assert parse_feed_line("# header") is None

    @pytest.mark.parametrize("line", ["1 2", "1 2 3 4", "a b c", "1.5 0 1"])
    def test_rejects_malformed_lines(self, line):
        with pytest.raises(ValueError):
            parse_feed_line(line)


class TestLiveSpecAxis:
    def test_live_source_round_trips(self):
        spec = _live_spec()
        spec.validate()
        again = RunSpec.from_dict(spec.to_dict())
        assert again.source.live is True
        assert again.to_dict() == spec.to_dict()

    def test_live_spec_refuses_batch_run(self):
        with pytest.raises(ProtocolError, match="repro serve"):
            _live_spec().build()

    def test_live_excludes_trace_and_needs_sites(self):
        with pytest.raises(ProtocolError):
            RunSpec.from_dict(
                {
                    "source": {"live": True, "sites": 4,
                               "trace": "updates.csv"},
                    "tracker": {"name": "deterministic", "epsilon": 0.1},
                }
            ).validate()
        with pytest.raises(ValueError):
            _live_spec(sites=0).validate()

    def test_live_requires_sync_transport(self):
        spec = _live_spec()
        spec.transport.mode = "async"
        spec.transport.latency = "constant"
        spec.transport.scale = 1.0
        with pytest.raises(ProtocolError):
            spec.validate()

    def test_build_network_matches_topology(self):
        spec = _live_spec(sites=8)
        spec.topology.shards = 2
        network = spec.build_network()
        assert network.num_shards == 2
        assert network.estimate() == 0.0


class TestLiveTrackerPushApi:
    def test_push_replay_matches_offline_run_exactly(self):
        spec = _spec()
        offline = spec.build().run()
        tracker = LiveTracker(_spec())
        last = 0.0
        for time, site, delta in _stream_updates(spec):
            last = tracker.push(time, site, delta)
        assert last == offline.records[-1].estimate
        assert tracker.updates == LENGTH
        status = tracker.status()
        assert status["total_messages"] == offline.total_messages
        assert status["total_bits"] == offline.total_bits
        assert status["messages_by_kind"] == offline.messages_by_kind
        assert status["rates"] == offline.summary()["rates"]

    def test_scrape_carries_service_series(self):
        spec = _spec()
        tracker = LiveTracker(_spec())
        for time, site, delta in _stream_updates(spec)[:200]:
            tracker.push(time, site, delta)
        text = tracker.scrape()
        assert "repro_updates_total 200\n" in text
        assert "repro_estimate " in text
        assert "repro_true_value " in text
        assert "repro_messages_total{" in text
        assert 'repro_info{repro_version="' in text
        assert "repro_message_rate " in text

    def test_value_alerts_fire_once_per_upward_crossing(self):
        tracker = LiveTracker(_spec(), alert_values=(3.0,))
        for t in range(1, 5):
            tracker.push(t, 0, +1)  # estimate tracks the count upward
        crossings = [a for a in tracker.alerts if a["type"] == "value"]
        assert len(crossings) == 1
        assert crossings[0]["threshold"] == 3.0
        assert tracker.alerts_total == len(tracker.alerts)

    def test_alerts_recorded_in_trace(self):
        trace = TraceLog()
        tracker = LiveTracker(_spec(), trace=trace, alert_values=(2.0,))
        for t in range(1, 4):
            tracker.push(t, 0, +1)
        assert len(trace.named("alert")) == 1

    def test_refuses_async_and_trace_specs(self):
        spec = _spec()
        spec.transport.mode = "async"
        spec.transport.latency = "constant"
        spec.transport.scale = 1.0
        with pytest.raises(ConfigurationError):
            LiveTracker(spec)
        with pytest.raises(ConfigurationError):
            LiveTracker(_spec(), error_threshold=0.0)


class TestLiveTrackerServer:
    def _serve(self, **tracker_kwargs):
        tracker = LiveTracker(_spec(), **tracker_kwargs)
        server = LiveTrackerServer(tracker, http_port=0, feed_port=0)
        server.start()
        return tracker, server

    def _get(self, server, path):
        url = f"http://127.0.0.1:{server.http_port}{path}"
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.headers, response.read()

    def test_http_endpoints(self):
        tracker, server = self._serve()
        try:
            tracker.push(1, 0, 1)
            status, headers, body = self._get(server, "/metrics")
            assert status == 200
            assert headers["Content-Type"] == METRICS_CONTENT_TYPE
            assert b"repro_updates_total 1\n" in body
            status, headers, body = self._get(server, "/status")
            assert status == 200
            payload = json.loads(body)
            assert payload["updates"] == 1
            assert payload["feed"] == {"lines": 0, "errors": 0}
            assert payload["endpoints"]["metrics"].endswith("/metrics")
            status, _, body = self._get(server, "/healthz")
            assert status == 200 and body == b"ok\n"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server, "/nope")
            assert excinfo.value.code == 404
        finally:
            server.shutdown()

    def test_socket_feed_ingests_and_counts_errors(self):
        tracker, server = self._serve()
        try:
            lines = b"\n".join(
                [
                    b"# comment",
                    b"1 0 1",
                    b"2 1 1",
                    b"not a line",  # malformed -> error, connection survives
                    b"3 99 1",  # site out of range -> error, survives
                    b"4 2 -1",
                    b"",
                ]
            )
            with socket.create_connection(
                ("127.0.0.1", server.feed_port), timeout=10
            ) as sock:
                sock.sendall(lines)
                sock.shutdown(socket.SHUT_WR)
                sock.recv(1)  # wait for the handler to drain and close
            deadline = threading.Event()
            for _ in range(100):
                if server.feed_lines == 3 and server.feed_errors == 2:
                    break
                deadline.wait(0.05)
            assert server.feed_lines == 3
            assert server.feed_errors == 2
            assert tracker.updates == 3
            assert tracker.true_value == 1
        finally:
            server.shutdown()

    def test_double_start_refused_and_shutdown_idempotent(self):
        tracker, server = self._serve()
        try:
            with pytest.raises(ProtocolError):
                server.start()
        finally:
            server.shutdown()
            server.shutdown()  # second teardown is a no-op


class TestServeCommand:
    def test_serve_runs_for_duration_and_reports_status(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "live.json"
        _live_spec().save(path)
        code = main(
            [
                "serve",
                "--config",
                str(path),
                "--http-port",
                "0",
                "--feed-port",
                "0",
                "--duration",
                "0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "/metrics" in out
        # The final line block is the service's closing status JSON.
        payload = json.loads(out[out.index("{"):])
        assert payload["updates"] == 0
        assert payload["feed"] == {"lines": 0, "errors": 0}
