"""Property-based tests (hypothesis) for the variability machinery."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.core.blocks import BlockPartitioner, block_trigger_threshold
from repro.core.variability import VariabilityTracker, variability, variability_increments
from repro.core.expansion import expand_stream, expand_update
from repro.streams.model import StreamSpec

# Unit (+-1) delta sequences of moderate length.
unit_deltas = st.lists(st.sampled_from([-1, 1]), min_size=1, max_size=400)

# Arbitrary bounded integer delta sequences (may include zero and large jumps).
integer_deltas = st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=200)


class TestVariabilityProperties:
    @given(unit_deltas)
    def test_bounded_between_zero_and_length(self, deltas):
        v = variability(deltas)
        assert 0.0 <= v <= len(deltas) + 1e-9

    @given(integer_deltas)
    def test_increments_in_unit_interval(self, deltas):
        for increment in variability_increments(deltas):
            assert 0.0 <= increment <= 1.0

    @given(unit_deltas)
    def test_online_tracker_matches_offline(self, deltas):
        tracker = VariabilityTracker()
        tracker.update_many(deltas)
        assert tracker.total == pytest.approx(variability(deltas))

    @given(unit_deltas)
    def test_prefix_monotonicity(self, deltas):
        # Variability only accumulates: v over a prefix is at most v over the whole.
        half = len(deltas) // 2
        assert variability(deltas[:half]) <= variability(deltas) + 1e-9

    @given(integer_deltas)
    def test_mirrored_stream_has_equal_variability(self, deltas):
        mirrored = [-d for d in deltas]
        assert variability(deltas) == pytest.approx(variability(mirrored))

    @given(st.integers(min_value=1, max_value=2_000))
    def test_monotone_variability_is_harmonic(self, n):
        v = variability([1] * n)
        harmonic = sum(1.0 / i for i in range(1, n + 1))
        assert v == pytest.approx(harmonic)
        assert v <= 1.0 + math.log(n) + 1e-9

    @given(unit_deltas)
    def test_mass_decomposition(self, deltas):
        tracker = VariabilityTracker()
        tracker.update_many(deltas)
        assert tracker.positive_mass - tracker.negative_mass == sum(deltas)
        assert tracker.positive_mass + tracker.negative_mass == len(deltas)


class TestBlockPartitionProperties:
    @given(unit_deltas, st.integers(min_value=1, max_value=5))
    @settings(max_examples=60)
    def test_blocks_partition_time(self, deltas, num_sites):
        partitioner = BlockPartitioner(num_sites=num_sites)
        partitioner.update_many(deltas)
        blocks = partitioner.finish()
        assert sum(block.length for block in blocks) == len(deltas)
        assert blocks[0].start_time == 1
        assert blocks[-1].end_time == len(deltas)
        for previous, current in zip(blocks, blocks[1:]):
            assert current.start_time == previous.end_time + 1

    @given(unit_deltas, st.integers(min_value=1, max_value=5))
    @settings(max_examples=60)
    def test_complete_blocks_have_constant_variability_gain(self, deltas, num_sites):
        partitioner = BlockPartitioner(num_sites=num_sites)
        partitioner.update_many(deltas)
        for block in partitioner.finish():
            if block.complete:
                assert block.variability_gain >= 0.1 - 1e-12
                assert block.length == block_trigger_threshold(block.level, num_sites)

    @given(unit_deltas, st.integers(min_value=1, max_value=5))
    @settings(max_examples=60)
    def test_boundary_values_are_exact(self, deltas, num_sites):
        partitioner = BlockPartitioner(num_sites=num_sites)
        partitioner.update_many(deltas)
        blocks = partitioner.finish()
        running = list(StreamSpec(name="x", deltas=tuple(deltas)).values())
        for block in blocks:
            assert block.end_value == running[block.end_time - 1]


class TestExpansionProperties:
    @given(st.integers(min_value=-200, max_value=200))
    def test_expand_update_sums_to_delta(self, delta):
        assert sum(expand_update(delta)) == delta
        assert all(step in (-1, 1) for step in expand_update(delta))

    @given(integer_deltas)
    def test_expand_stream_preserves_final_value(self, deltas):
        spec = StreamSpec(name="jumps", deltas=tuple(deltas))
        if all(d == 0 for d in deltas):
            return
        expanded = expand_stream(spec)
        assert expanded.final_value() == spec.final_value()
        assert expanded.is_unit_stream()
        assert expanded.length == sum(abs(d) for d in deltas)
