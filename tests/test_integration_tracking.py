"""Integration tests: the Section 3 upper bounds end to end.

These exercise the full stack (generators -> assignment -> trackers ->
runner -> metrics) across stream classes and parameter settings, checking the
error guarantees, the communication bounds and the comparisons against the
monotone-only baselines that the paper highlights.
"""

import pytest

from repro.analysis import compare_trackers
from repro.analysis.bounds import (
    deterministic_message_bound,
    randomized_message_bound,
)
from repro.baselines import CormodeCounter, HuangCounter, LiuStyleCounter, NaiveCounter
from repro.core import DeterministicCounter, RandomizedCounter, variability
from repro.streams import (
    assign_sites,
    biased_walk_stream,
    database_size_trace,
    monotone_stream,
    random_walk_stream,
)


class TestUpperBoundsAcrossStreamClasses:
    @pytest.mark.parametrize(
        "spec_factory",
        [
            lambda: monotone_stream(6_000),
            lambda: biased_walk_stream(6_000, drift=0.5, seed=1),
            lambda: random_walk_stream(6_000, seed=2),
            lambda: database_size_trace(6_000, seed=3),
        ],
        ids=["monotone", "biased_walk", "random_walk", "database_trace"],
    )
    def test_deterministic_guarantee_and_bound(self, spec_factory):
        spec = spec_factory()
        k, epsilon = 4, 0.1
        v = variability(spec.deltas)
        result = DeterministicCounter(k, epsilon).track(assign_sites(spec, k))
        assert result.error_violations(epsilon) == 0
        assert result.total_messages <= deterministic_message_bound(k, epsilon, v)

    @pytest.mark.parametrize(
        "spec_factory",
        [
            lambda: monotone_stream(6_000),
            lambda: biased_walk_stream(6_000, drift=0.5, seed=4),
            lambda: random_walk_stream(6_000, seed=5),
        ],
        ids=["monotone", "biased_walk", "random_walk"],
    )
    def test_randomized_guarantee_and_bound(self, spec_factory):
        spec = spec_factory()
        k, epsilon = 4, 0.1
        v = variability(spec.deltas)
        result = RandomizedCounter(k, epsilon, seed=11).track(assign_sites(spec, k))
        assert result.violation_fraction(epsilon) < 1.0 / 3.0
        assert result.total_messages <= 2.0 * randomized_message_bound(k, epsilon, v)


class TestMonotoneReduction:
    """On monotone streams the adapted trackers stay in the same cost regime as
    the monotone-only algorithms of Cormode et al. and Huang et al. (E7)."""

    def test_deterministic_vs_cormode_on_monotone(self):
        spec = monotone_stream(20_000)
        k, epsilon = 4, 0.1
        comparisons = {
            c.name: c
            for c in compare_trackers(
                {
                    "paper_det": DeterministicCounter(k, epsilon),
                    "cormode": CormodeCounter(k, epsilon),
                    "naive": NaiveCounter(k),
                },
                spec,
                num_sites=k,
                epsilon=epsilon,
            )
        }
        assert comparisons["paper_det"].max_relative_error <= epsilon + 1e-12
        assert comparisons["cormode"].max_relative_error <= epsilon + 1e-12
        # Both are orders of magnitude below naive, and within a constant
        # factor of each other (the paper's tracker pays the block overhead).
        assert comparisons["paper_det"].messages < 0.2 * comparisons["naive"].messages
        assert comparisons["cormode"].messages < 0.2 * comparisons["naive"].messages
        ratio = comparisons["paper_det"].messages / comparisons["cormode"].messages
        assert ratio < 12.0

    def test_randomized_vs_huang_on_monotone(self):
        spec = monotone_stream(20_000)
        k, epsilon = 9, 0.3
        updates = assign_sites(spec, k)
        paper = RandomizedCounter(k, epsilon, seed=3).track(updates)
        huang = HuangCounter(k, epsilon, seed=4).track(updates)
        assert paper.violation_fraction(epsilon) < 1.0 / 3.0
        assert huang.violation_fraction(epsilon) < 1.0 / 3.0
        assert paper.total_messages < 0.25 * spec.length
        assert huang.total_messages < 0.25 * spec.length


class TestRandomWalkComparison:
    """For fair-coin inputs the variability framework matches the Liu et al.
    communication regime while giving a per-step worst-case guarantee (E8)."""

    def test_liu_cheaper_but_weaker_guarantee(self):
        spec = random_walk_stream(20_000, seed=21)
        k, epsilon = 4, 0.2
        updates = assign_sites(spec, k)
        paper = DeterministicCounter(k, epsilon).track(updates)
        liu = LiuStyleCounter(k, epsilon, seed=22).track(updates)
        # The paper's tracker never violates; the sampling baseline sometimes does.
        assert paper.error_violations(epsilon) == 0
        assert liu.violation_fraction(epsilon) >= 0.0
        # Both are sub-linear in n on this input? The sampling baseline is;
        # the paper's tracker pays ~k v / eps which for a fair walk of this
        # length is still comparable to n.  What the framework buys is the
        # guarantee, not fewer messages on this specific input.
        assert liu.total_messages < spec.length

    def test_paper_tracker_wins_when_walk_drifts_away_from_zero(self):
        # Once the walk leaves the neighbourhood of zero (drift), v collapses
        # and the paper's tracker becomes far cheaper than per-update sampling
        # tuned for the zero-mean case.
        spec = biased_walk_stream(20_000, drift=0.6, seed=23)
        k, epsilon = 4, 0.1
        updates = assign_sites(spec, k)
        paper = DeterministicCounter(k, epsilon).track(updates)
        naive = NaiveCounter(k).track(updates)
        assert paper.total_messages < 0.25 * naive.total_messages
        assert paper.error_violations(epsilon) == 0


class TestEndToEndHistoricalQueries:
    def test_tracking_result_history_answers_past_queries(self):
        spec = random_walk_stream(3_000, seed=31)
        k, epsilon = 2, 0.1
        result = DeterministicCounter(k, epsilon).track(assign_sites(spec, k))
        values = spec.values()
        for time in range(100, 3_001, 250):
            estimate = result.history.query(time)
            true_value = values[time - 1]
            assert abs(estimate - true_value) <= epsilon * abs(true_value) + 1e-9
