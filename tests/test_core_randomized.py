"""Tests for the randomized tracker of Section 3.4."""

import pytest

from repro.analysis.bounds import randomized_message_bound
from repro.core import RandomizedCounter, variability
from repro.core.randomized import report_probability
from repro.exceptions import ConfigurationError
from repro.streams import (
    assign_sites,
    biased_walk_stream,
    monotone_stream,
    random_walk_stream,
)


class TestReportProbability:
    def test_formula(self):
        # p = 3 / (eps * 2^r * sqrt(k))
        assert report_probability(level=4, num_sites=4, epsilon=0.1) == pytest.approx(
            3.0 / (0.1 * 16 * 2.0)
        )

    def test_capped_at_one(self):
        assert report_probability(level=0, num_sites=1, epsilon=0.5) == 1.0

    def test_level_zero_exact_when_k_small(self):
        # For k <= 9 / eps^2 the level-0 probability is 1 (exact tracking).
        assert report_probability(level=0, num_sites=9, epsilon=0.9) == pytest.approx(1.0)
        assert report_probability(level=0, num_sites=4, epsilon=0.1) == 1.0

    def test_decreases_with_level(self):
        probabilities = [report_probability(r, 16, 0.05) for r in range(8)]
        assert probabilities == sorted(probabilities, reverse=True)


class TestCorrectness:
    """P(|f - fhat| > eps |f|) < 1/3 per timestep; empirically far below."""

    @pytest.mark.parametrize("num_sites", [1, 4, 9])
    def test_random_walk_violation_fraction(self, num_sites):
        spec = random_walk_stream(4_000, seed=31)
        updates = assign_sites(spec, num_sites)
        result = RandomizedCounter(num_sites, 0.1, seed=7).track(updates)
        assert result.violation_fraction(0.1) < 1.0 / 3.0

    def test_monotone_violation_fraction(self):
        spec = monotone_stream(6_000)
        result = RandomizedCounter(4, 0.1, seed=3).track(assign_sites(spec, 4))
        assert result.violation_fraction(0.1) < 1.0 / 3.0

    def test_biased_walk_violation_fraction(self):
        spec = biased_walk_stream(6_000, drift=0.4, seed=8)
        result = RandomizedCounter(4, 0.1, seed=9).track(assign_sites(spec, 4))
        assert result.violation_fraction(0.1) < 1.0 / 3.0

    def test_violations_averaged_over_seeds(self):
        spec = random_walk_stream(2_000, seed=12)
        updates = assign_sites(spec, 4)
        fractions = [
            RandomizedCounter(4, 0.15, seed=seed).track(updates).violation_fraction(0.15)
            for seed in range(5)
        ]
        assert sum(fractions) / len(fractions) < 1.0 / 3.0

    def test_reproducible_with_seed(self):
        spec = random_walk_stream(1_500, seed=13)
        updates = assign_sites(spec, 3)
        first = RandomizedCounter(3, 0.1, seed=42).track(updates)
        second = RandomizedCounter(3, 0.1, seed=42).track(updates)
        assert first.total_messages == second.total_messages
        assert [r.estimate for r in first.records] == [r.estimate for r in second.records]

    def test_different_seeds_differ(self):
        spec = biased_walk_stream(3_000, drift=0.5, seed=14)
        updates = assign_sites(spec, 4)
        first = RandomizedCounter(4, 0.05, seed=1).track(updates)
        second = RandomizedCounter(4, 0.05, seed=2).track(updates)
        assert first.total_messages != second.total_messages


class TestCommunication:
    def test_within_expected_bound_with_slack(self):
        spec = random_walk_stream(5_000, seed=21)
        v = variability(spec.deltas)
        result = RandomizedCounter(4, 0.1, seed=5).track(assign_sites(spec, 4))
        # The bound is on the expectation; allow a factor-2 slack for one run.
        assert result.total_messages <= 2.0 * randomized_message_bound(4, 0.1, v)

    def test_beats_deterministic_for_many_sites_on_grown_stream(self):
        # Once |f| is large (levels r >= 1) the randomized tracker's
        # sqrt(k)/eps per-block cost beats the deterministic k/eps cost.
        from repro.core import DeterministicCounter

        spec = biased_walk_stream(20_000, drift=0.8, seed=22)
        num_sites = 64
        epsilon = 0.2  # keeps k <= 9 / eps^2 so level-0 blocks stay exact
        updates = assign_sites(spec, num_sites)
        randomized = RandomizedCounter(num_sites, epsilon, seed=6).track(updates)
        deterministic = DeterministicCounter(num_sites, epsilon).track(updates)
        assert randomized.violation_fraction(epsilon) < 1.0 / 3.0
        assert randomized.total_messages < deterministic.total_messages

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            RandomizedCounter(num_sites=0, epsilon=0.1)
        with pytest.raises(ConfigurationError):
            RandomizedCounter(num_sites=2, epsilon=0.0)
