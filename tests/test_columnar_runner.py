"""Columnar trace ingestion: CSV round-trip and the array-native runner.

The columnar path (``save_trace_csv`` / ``load_trace_columns`` /
``run_tracking_arrays``) replays traces without constructing a single
:class:`~repro.types.Update` object; its contract is bit-for-bit equivalence
with ``run_tracking`` over the same updates — estimates, message counts,
bit counts, per-kind breakdown — at every recording stride.
"""

import numpy as np
import pytest

from repro.core import DeterministicCounter, RandomizedCounter
from repro.exceptions import ProtocolError, StreamError
from repro.monitoring import build_sharded_network, run_tracking, run_tracking_arrays
from repro.streams import (
    BlockedAssignment,
    SkewedAssignment,
    TraceColumns,
    assign_sites,
    columns_from_updates,
    load_trace_columns,
    random_walk_stream,
    save_trace_csv,
    sawtooth_stream,
)


def _fingerprint(result):
    return (
        [
            (r.time, r.true_value, r.estimate, r.messages, r.bits)
            for r in result.records
        ],
        result.total_messages,
        result.total_bits,
        result.messages_by_kind,
    )


class TestTraceCsvRoundtrip:
    def test_roundtrip_preserves_columns(self, tmp_path):
        updates = assign_sites(random_walk_stream(500, seed=3), 4)
        path = tmp_path / "trace.csv"
        save_trace_csv(updates, path)
        loaded = load_trace_columns(path)
        original = columns_from_updates(updates)
        assert np.array_equal(loaded.times, original.times)
        assert np.array_equal(loaded.sites, original.sites)
        assert np.array_equal(loaded.deltas, original.deltas)
        assert len(loaded) == 500

    def test_save_accepts_columns_directly(self, tmp_path):
        columns = columns_from_updates(assign_sites(sawtooth_stream(64, amplitude=8), 2))
        path = tmp_path / "trace.csv"
        save_trace_csv(columns, path)
        assert np.array_equal(load_trace_columns(path).deltas, columns.deltas)

    def test_to_updates_inverts_columns(self):
        updates = assign_sites(random_walk_stream(120, seed=5), 3)
        assert columns_from_updates(updates).to_updates() == updates

    def test_missing_file_and_bad_header_rejected(self, tmp_path):
        with pytest.raises(StreamError):
            load_trace_columns(tmp_path / "absent.csv")
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b,c\n1,0,1\n")
        with pytest.raises(StreamError):
            load_trace_columns(bad)

    def test_empty_and_malformed_tables_rejected(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("time,site,delta\n")
        with pytest.raises(StreamError):
            load_trace_columns(empty)
        malformed = tmp_path / "malformed.csv"
        malformed.write_text("time,site,delta\n1,0,x\n")
        with pytest.raises(StreamError):
            load_trace_columns(malformed)

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(StreamError):
            TraceColumns(
                times=np.arange(3, dtype=np.int64),
                sites=np.zeros(2, dtype=np.int64),
                deltas=np.ones(3, dtype=np.int64),
            )


class TestRunTrackingArrays:
    @pytest.mark.parametrize("record_every", [1, 7, 50])
    @pytest.mark.parametrize(
        "policy_factory",
        [lambda: BlockedAssignment(64), lambda: SkewedAssignment(seed=1)],
        ids=["blocked", "skewed"],
    )
    def test_bit_for_bit_identical_to_run_tracking(self, record_every, policy_factory):
        spec = random_walk_stream(2_000, seed=7)
        updates = assign_sites(spec, 4, policy_factory())
        columns = columns_from_updates(updates)
        for factory_builder in (
            lambda: DeterministicCounter(4, 0.1),
            lambda: RandomizedCounter(4, 0.1, seed=9),
        ):
            reference = run_tracking(
                factory_builder().build_network(),
                updates,
                record_every=record_every,
                batched=True,
            )
            columnar = run_tracking_arrays(
                factory_builder().build_network(),
                columns.times,
                columns.sites,
                columns.deltas,
                record_every=record_every,
            )
            assert _fingerprint(reference) == _fingerprint(columnar)

    def test_loaded_trace_feeds_the_runner(self, tmp_path):
        updates = assign_sites(random_walk_stream(800, seed=11), 2, BlockedAssignment(50))
        path = tmp_path / "trace.csv"
        save_trace_csv(updates, path)
        trace = load_trace_columns(path)
        replayed = run_tracking_arrays(
            DeterministicCounter(2, 0.1).build_network(),
            trace.times,
            trace.sites,
            trace.deltas,
            record_every=40,
        )
        reference = DeterministicCounter(2, 0.1).track(
            updates, record_every=40, batched=True
        )
        assert _fingerprint(replayed) == _fingerprint(reference)

    def test_drives_sharded_networks(self):
        updates = assign_sites(random_walk_stream(1_000, seed=13), 6, BlockedAssignment(32))
        columns = columns_from_updates(updates)
        sharded = run_tracking_arrays(
            build_sharded_network(DeterministicCounter(6, 0.1), 3),
            columns.times,
            columns.sites,
            columns.deltas,
            record_every=25,
        )
        flat = run_tracking(
            build_sharded_network(DeterministicCounter(6, 0.1), 3),
            updates,
            record_every=25,
            batched=True,
        )
        assert _fingerprint(sharded) == _fingerprint(flat)

    def test_empty_trace(self):
        result = run_tracking_arrays(
            DeterministicCounter(2, 0.1).build_network(), [], [], []
        )
        assert result.records == []
        assert result.total_messages == 0

    def test_shape_validation(self):
        network = DeterministicCounter(2, 0.1).build_network()
        with pytest.raises(ProtocolError):
            run_tracking_arrays(network, [1, 2], [0], [1, 1])
        with pytest.raises(ValueError):
            run_tracking_arrays(network, [1], [0], [1], record_every=0)


class TestEmptyInputs:
    """Zero-length inputs: both runners return an empty result with totals.

    A zero-length columnar run must match ``run_tracking`` on an empty
    iterable exactly — no records, zero totals, an empty per-kind breakdown
    — so downstream ``summary()`` consumers never special-case empty
    workloads.
    """

    @pytest.mark.parametrize("record_every", [1, 7])
    def test_empty_iterable_run_tracking(self, record_every):
        result = run_tracking(
            DeterministicCounter(3, 0.2).build_network(),
            [],
            record_every=record_every,
        )
        assert result.records == []
        assert result.total_messages == 0
        assert result.total_bits == 0
        assert result.messages_by_kind == {}
        assert result.max_relative_error() == 0.0
        assert result.violation_fraction(0.2) == 0.0
        assert result.summary(0.2)["num_records"] == 0

    @pytest.mark.parametrize("record_every", [1, 7])
    def test_empty_columns_run_tracking_arrays(self, record_every):
        empty = np.asarray([], dtype=np.int64)
        result = run_tracking_arrays(
            DeterministicCounter(3, 0.2).build_network(),
            empty,
            empty,
            empty,
            record_every=record_every,
        )
        assert result.records == []
        assert result.total_messages == 0
        assert result.total_bits == 0
        assert result.messages_by_kind == {}
        assert result.summary(0.2)["num_records"] == 0

    def test_empty_columns_match_empty_iterable(self):
        empty = np.asarray([], dtype=np.int64)
        columnar = run_tracking_arrays(
            DeterministicCounter(3, 0.2).build_network(), empty, empty, empty
        )
        streamed = run_tracking(DeterministicCounter(3, 0.2).build_network(), [])
        assert _fingerprint(columnar) == _fingerprint(streamed)
