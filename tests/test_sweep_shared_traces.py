"""Parallel sweeps over shared traces: ordering, error transport, caching.

Three guarantees ride on ``Sweep.run(workers=n)``:

* results come back in **grid order** (the order ``Sweep.specs()`` expands),
  bit-identical to a serial run, no matter how the pool schedules points;
* a failing grid point surfaces as a :class:`SweepError` that survives
  pickling with its spec dict and child traceback intact (the error itself
  crosses process boundaries in nested-pool setups);
* one trace file feeds the whole grid through the process-wide
  :mod:`repro.api.trace_cache` — each process opens the file once, which
  :func:`repro.streams.io.trace_open_counts` makes observable.
"""

import pickle

import numpy as np
import pytest

from repro.api import (
    RunSpec,
    SourceSpec,
    Sweep,
    SweepError,
    TrackerSpec,
    clear_trace_cache,
    shared_trace,
    shutdown_sweep_pool,
)
from repro.streams.io import (
    TraceColumns,
    reset_trace_open_counts,
    save_trace_npz,
    trace_open_counts,
)


def _write_trace(path, n=6000, sites=6, seed=11):
    rng = np.random.default_rng(seed)
    columns = TraceColumns(
        times=np.arange(1, n + 1, dtype=np.int64),
        sites=rng.integers(0, sites, size=n).astype(np.int64),
        deltas=np.where(rng.random(n) < 0.6, 1, -1).astype(np.int64),
    )
    save_trace_npz(columns, path)
    return path


def _trace_spec(trace, mmap=True):
    return RunSpec(
        source=SourceSpec(stream=None, trace=str(trace), mmap=mmap),
        tracker=TrackerSpec(name="deterministic", epsilon=0.1),
        engine="arrays",
        record_every=500,
    )


def _fingerprint(point):
    return (
        point.result.total_messages,
        point.result.total_bits,
        [(r.time, r.estimate) for r in point.result.records],
    )


GRID = {
    "tracker.epsilon": [0.1, 0.2, 0.3],
    "tracker.name": ["deterministic", "randomized"],
}


class TestParallelGridOrder:
    def test_workers_preserve_grid_order_and_results(self, tmp_path):
        """Pooled results align with the serial expansion, point for point."""
        base = _trace_spec(_write_trace(tmp_path / "trace.npz"))
        sweep = Sweep(base, GRID)
        try:
            parallel = sweep.run(workers=3)
        finally:
            shutdown_sweep_pool()
        serial = Sweep(base, GRID).run()
        expected_order = [overrides for overrides, _ in sweep.specs()]
        assert [p.overrides for p in parallel] == expected_order
        assert [p.overrides for p in serial] == expected_order
        assert [_fingerprint(p) for p in parallel] == [
            _fingerprint(p) for p in serial
        ]


class TestSweepErrorPickle:
    def test_round_trip_keeps_spec_and_traceback(self, tmp_path):
        base = _trace_spec(_write_trace(tmp_path / "trace.npz"))
        error = SweepError(
            {"tracker.epsilon": -1.0},
            base.to_dict(),
            "Traceback (most recent call last):\n  ...\nBoom",
        )
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, SweepError)
        assert clone.overrides == error.overrides
        assert clone.spec_dict == error.spec_dict
        assert clone.child_traceback == error.child_traceback
        assert str(clone) == str(error)

    def test_failing_point_raises_sweep_error_from_pool(self, tmp_path):
        trace = _write_trace(tmp_path / "trace.npz")
        base = _trace_spec(trace)
        sweep = Sweep(base, {"tracker.epsilon": [0.1, 0.2, 0.3, 0.4]})
        trace.unlink()  # every worker-side load now fails
        clear_trace_cache()
        try:
            with pytest.raises(SweepError) as excinfo:
                sweep.run(workers=2)
        finally:
            shutdown_sweep_pool()
        assert "trace" in excinfo.value.child_traceback
        assert excinfo.value.spec_dict["source"]["trace"] == str(trace)


class TestTraceCache:
    def test_one_open_per_process_across_grid_points(self, tmp_path):
        trace = _write_trace(tmp_path / "trace.npz")
        clear_trace_cache()
        reset_trace_open_counts()
        Sweep(_trace_spec(trace), {"tracker.epsilon": [0.1, 0.2, 0.3, 0.4]}).run()
        assert sum(trace_open_counts().values()) == 1

    def test_rewritten_trace_is_reloaded(self, tmp_path):
        # Eager loads: a mmap handle would see the rewrite through the
        # shared inode, masking whether the cache actually re-opened.
        trace = _write_trace(tmp_path / "trace.npz", seed=1)
        clear_trace_cache()
        reset_trace_open_counts()
        first = shared_trace(trace, mmap=False).columns()
        assert shared_trace(trace, mmap=False).columns() is first
        assert sum(trace_open_counts().values()) == 1
        _write_trace(trace, seed=2)
        second = shared_trace(trace, mmap=False).columns()
        assert sum(trace_open_counts().values()) == 2
        assert not np.array_equal(first.sites, second.sites)

    def test_mmap_flag_is_part_of_the_key(self, tmp_path):
        trace = _write_trace(tmp_path / "trace.npz")
        clear_trace_cache()
        mapped = shared_trace(trace, mmap=True).columns()
        eager = shared_trace(trace, mmap=False).columns()
        assert isinstance(mapped.times, np.memmap)
        assert not isinstance(eager.times, np.memmap)
        np.testing.assert_array_equal(
            np.asarray(mapped.deltas), np.asarray(eager.deltas)
        )

    def test_workers_open_once_each_not_once_per_point(self, tmp_path):
        trace = _write_trace(tmp_path / "trace.npz")
        base = _trace_spec(trace)
        grid = {"tracker.epsilon": [0.1, 0.15, 0.2, 0.25, 0.3, 0.35]}
        try:
            points = Sweep(base, grid).run(workers=2)
            opens = Sweep.worker_trace_opens()
            assert opens, "shared pool should still be alive"
            # Forked workers inherit the parent's tally, so look only at
            # this test's trace: exactly one open per worker (the pool
            # initializer's), never one per grid point.
            key = str(trace.resolve())
            assert all(counts.get(key, 0) == 1 for counts in opens.values())
            total = sum(counts.get(key, 0) for counts in opens.values())
            assert total < len(points)
        finally:
            shutdown_sweep_pool()
        assert Sweep.worker_trace_opens() == {}
