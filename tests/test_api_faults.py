"""The ``transport.loss`` axis: spec validation, round-trips, CLI plumbing.

The fault subsystem reaches users through the declarative spec layer, so
this file pins the contracts at that boundary: invalid loss configurations
fail in ``validate()`` with messages naming the offending fields (including
the sync/loss and sync/repair conflicts), lossy specs survive the
``to_dict``/``from_dict`` JSON round-trip, the spec-local loss-model name
table stays in lockstep with the fault subsystem's own, an end-to-end lossy
run surfaces its reliability totals, and the ``latency`` CLI subcommand's
``--loss`` family of flags feeds the same axis.
"""

import json

import pytest

from repro.api import LOSS_MODEL_NAMES, RunSpec, SourceSpec, TrackerSpec, TransportSpec
from repro.cli import main
from repro.exceptions import ProtocolError
from repro.faults.channel import LOSS_MODEL_NAMES as FAULT_LOSS_MODEL_NAMES


def _spec(**transport_kwargs) -> RunSpec:
    return RunSpec(
        source=SourceSpec(stream="random_walk", length=2_000, seed=3, sites=4),
        tracker=TrackerSpec(name="deterministic", epsilon=0.15),
        transport=TransportSpec(mode="async", latency="uniform", **transport_kwargs),
        record_every=50,
    )


class TestNameTablePin:
    def test_spec_and_faults_agree_on_model_names(self):
        # spec.py keeps a local copy so the sync-only import path never pulls
        # in the fault subsystem; this pin is what allows that duplication.
        assert LOSS_MODEL_NAMES == FAULT_LOSS_MODEL_NAMES


class TestValidation:
    def test_loss_out_of_range_names_field(self):
        for loss in (-0.1, 1.0):
            with pytest.raises(ValueError, match=r"transport\.loss"):
                _spec(loss=loss).validate()

    def test_unknown_loss_model_names_field(self):
        with pytest.raises(ValueError, match=r"transport\.loss_model"):
            _spec(loss=0.1, loss_model="cosmic").validate()

    def test_sync_transport_rejects_loss(self):
        spec = RunSpec(
            source=SourceSpec(stream="random_walk", length=500),
            tracker=TrackerSpec(name="deterministic"),
            transport=TransportSpec(mode="sync", loss=0.1),
        )
        with pytest.raises(ProtocolError, match=r"transport\.loss"):
            spec.validate()

    def test_sync_transport_rejects_repair(self):
        spec = RunSpec(
            source=SourceSpec(stream="random_walk", length=500),
            tracker=TrackerSpec(name="deterministic"),
            transport=TransportSpec(mode="sync", repair=True),
        )
        with pytest.raises(ProtocolError, match=r"transport\.repair"):
            spec.validate()

    def test_burst_feasibility_names_both_fields(self):
        with pytest.raises(ValueError, match=r"transport\.loss_burst"):
            _spec(loss=0.9, loss_model="burst", loss_burst=2.0).validate()

    def test_burst_length_below_one_rejected(self):
        with pytest.raises(ValueError, match=r"transport\.loss_burst"):
            _spec(loss=0.1, loss_model="burst", loss_burst=0.5).validate()

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match=r"transport\.timeout"):
            _spec(loss=0.1, timeout=0.0).validate()

    def test_lossless_async_spec_still_valid(self):
        _spec().validate()


class TestBuildFaults:
    def test_zero_loss_builds_no_plan(self):
        assert _spec().transport.build_faults() is None

    def test_lossy_plan_carries_every_axis(self):
        plan = _spec(
            loss=0.2, loss_model="burst", loss_burst=6.0, loss_seed=9, timeout=2.0
        ).transport.build_faults()
        assert plan.loss == 0.2
        assert plan.model == "burst"
        assert plan.burst_length == 6.0
        assert plan.seed == 9
        assert plan.retransmit.timeout == 2.0
        assert plan.retransmit.max_timeout == 32.0


class TestRoundTrip:
    def test_lossy_spec_json_round_trips(self):
        spec = _spec(loss=0.15, loss_model="burst", loss_burst=5.0, loss_seed=4,
                     timeout=2.5, repair=True)
        clone = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        transport = clone.transport
        assert (transport.loss, transport.loss_model, transport.loss_burst) == (
            0.15, "burst", 5.0,
        )
        assert (transport.loss_seed, transport.timeout, transport.repair) == (
            4, 2.5, True,
        )

    def test_with_overrides_reaches_the_loss_axis(self):
        spec = _spec().with_overrides(
            {"transport.loss": 0.1, "transport.repair": True}
        )
        assert spec.transport.loss == 0.1
        assert spec.transport.repair is True


class TestEndToEnd:
    def test_lossy_run_surfaces_reliability(self):
        result = _spec(loss=0.15, loss_seed=7).run()
        reliability = result.summary(0.15)["reliability"]
        assert reliability["dropped"] > 0
        assert reliability["retransmitted"] == (
            reliability["dropped"] + reliability["duplicates"]
        )

    def test_repaired_lossy_run_executes(self):
        result = _spec(loss=0.1, repair=True).run()
        assert result.summary(0.15)["reliability"]["dropped"] > 0

    def test_lossless_run_reports_zero_reliability_traffic(self):
        reliability = _spec().run().summary(0.15)["reliability"]
        assert reliability == {"dropped": 0, "retransmitted": 0, "duplicates": 0}


class TestLatencyCliLossFlags:
    def test_loss_flags_add_reliability_columns(self, capsys):
        exit_code = main(
            [
                "latency",
                "--stream", "random_walk",
                "--length", "1500",
                "--sites", "2",
                "--scales", "0", "2",
                "--record-every", "25",
                "--loss", "0.1",
                "--loss-model", "burst",
                "--loss-seed", "3",
                "--repair",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "dropped" in captured
        assert "retransmitted" in captured
        assert "loss=0.1(burst)" in captured
        assert "closes=repaired" in captured

    def test_lossless_table_is_unchanged(self, capsys):
        exit_code = main(
            [
                "latency",
                "--stream", "random_walk",
                "--length", "1000",
                "--sites", "2",
                "--scales", "0",
                "--record-every", "25",
            ]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "dropped" not in captured
        assert "loss=" not in captured
