"""Spec-vs-legacy equivalence: the RunSpec layer adds scenarios, not semantics.

The acceptance contract of the unified API: for a grid over
{engine x topology(shards in {1, 3}) x transport(sync, zero-latency async,
jittered async)} x trackers, :meth:`repro.api.RunSpec.run` is bit-for-bit
identical — recorded estimates, message totals, bit totals, per-kind counts
— to hand-wiring the corresponding legacy entry point, and
``RunSpec.from_dict(spec.to_dict())`` reproduces the same result.  A
separate columnar section pins the ``arrays`` engine against
:func:`repro.monitoring.runner.run_tracking_arrays` over both trace formats.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    RunSpec,
    SourceSpec,
    TopologySpec,
    TrackerSpec,
    TransportSpec,
)
from repro.asynchrony import (
    UniformLatency,
    ZERO_LATENCY,
    build_async_network,
    build_sharded_async_network,
    run_tracking_async,
)
from repro.core import DeterministicCounter, RandomizedCounter
from repro.monitoring import build_sharded_network, run_tracking, run_tracking_arrays
from repro.streams import assign_sites, random_walk_stream
from repro.streams.io import columns_from_updates, save_trace_csv, save_trace_npz

LENGTH = 300
SITES = 6
EPSILON = 0.15
JITTER_SCALE = 3.0


def _fingerprint(result):
    return (
        [(r.time, r.true_value, r.estimate, r.messages, r.bits) for r in result.records],
        result.total_messages,
        result.total_bits,
        result.messages_by_kind,
    )


def _legacy_factory(tracker: str, num_sites: int, seed: int):
    if tracker == "deterministic":
        return DeterministicCounter(num_sites, EPSILON)
    return RandomizedCounter(num_sites, EPSILON, seed=seed)


@settings(max_examples=40, deadline=None)
@given(
    tracker=st.sampled_from(["deterministic", "randomized"]),
    engine=st.sampled_from(["auto", "per-update", "batched"]),
    shards=st.sampled_from([1, 3]),
    transport=st.sampled_from(["sync", "async-zero", "async-jitter"]),
    seed=st.integers(min_value=0, max_value=3),
    record_every=st.sampled_from([1, 7]),
)
def test_spec_run_is_bit_for_bit_the_legacy_entry_point(
    tracker, engine, shards, transport, seed, record_every
):
    spec = RunSpec(
        source=SourceSpec(stream="random_walk", length=LENGTH, seed=seed, sites=SITES),
        tracker=TrackerSpec(name=tracker, epsilon=EPSILON, seed=seed),
        topology=TopologySpec(shards=shards),
        transport=(
            TransportSpec(mode="sync")
            if transport == "sync"
            else TransportSpec(
                mode="async",
                latency="uniform" if transport == "async-jitter" else "zero",
                scale=JITTER_SCALE if transport == "async-jitter" else 0.0,
                seed=seed,
            )
        ),
        engine=engine,
        record_every=record_every,
    )
    result = spec.run()

    # The legacy route: hand-built stream, factory, network and runner call.
    updates = assign_sites(random_walk_stream(LENGTH, seed=seed), SITES)
    factory = _legacy_factory(tracker, SITES, seed)
    if transport == "sync":
        network = (
            factory.build_network()
            if shards == 1
            else build_sharded_network(factory, shards)
        )
        legacy = run_tracking(
            network,
            updates,
            record_every=record_every,
            batched={"auto": None, "batched": True, "per-update": False}[engine],
        )
    else:
        model = (
            UniformLatency(JITTER_SCALE / 2.0, 1.5 * JITTER_SCALE)
            if transport == "async-jitter"
            else ZERO_LATENCY
        )
        network = (
            build_async_network(factory, latency=model, seed=seed)
            if shards == 1
            else build_sharded_async_network(factory, shards, latency=model, seed=seed)
        )
        legacy = run_tracking_async(
            network, updates, record_every=record_every, batched=engine == "batched"
        )
    assert _fingerprint(result) == _fingerprint(legacy)

    # Serialization reproduces the run exactly: JSON out, JSON in, same bits.
    replayed = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict()))).run()
    assert _fingerprint(replayed) == _fingerprint(result)


@pytest.mark.parametrize("fmt", ["csv", "npz"])
@pytest.mark.parametrize("shards", [1, 3])
def test_arrays_spec_matches_run_tracking_arrays(tmp_path, fmt, shards):
    updates = assign_sites(random_walk_stream(LENGTH, seed=2), SITES)
    trace = columns_from_updates(updates)
    path = tmp_path / f"trace.{fmt}"
    if fmt == "npz":
        save_trace_npz(trace, path)
    else:
        save_trace_csv(trace, path)
    spec = RunSpec(
        source=SourceSpec(stream=None, trace=str(path), mmap=fmt == "npz"),
        tracker=TrackerSpec(name="deterministic", epsilon=EPSILON),
        topology=TopologySpec(shards=shards),
        engine="arrays",
        record_every=7,
    )
    result = spec.run()
    factory = DeterministicCounter(SITES, EPSILON)
    network = (
        factory.build_network() if shards == 1 else build_sharded_network(factory, shards)
    )
    legacy = run_tracking_arrays(
        network, trace.times, trace.sites, trace.deltas, record_every=7
    )
    assert _fingerprint(result) == _fingerprint(legacy)
    replayed = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict()))).run()
    assert _fingerprint(replayed) == _fingerprint(result)
