"""Tests for the stream generators."""

import math

import pytest

from repro.core.variability import variability
from repro.exceptions import ConfigurationError
from repro.streams import (
    adversarial_flip_stream,
    assign_sites,
    biased_walk_stream,
    bursty_stream,
    constant_stream,
    monotone_stream,
    nearly_monotone_stream,
    periodic_stream,
    random_walk_stream,
    sawtooth_stream,
    sign_alternating_stream,
)


class TestMonotoneStream:
    def test_all_plus_one(self):
        spec = monotone_stream(100)
        assert spec.deltas == (1,) * 100
        assert spec.final_value() == 100

    def test_values_increasing(self):
        values = monotone_stream(50).values()
        assert values == list(range(1, 51))

    def test_rejects_zero_length(self):
        with pytest.raises(ConfigurationError):
            monotone_stream(0)


class TestNearlyMonotoneStream:
    def test_length_and_unit_deltas(self):
        spec = nearly_monotone_stream(500, deletion_fraction=0.2, seed=1)
        assert spec.length == 500
        assert spec.is_unit_stream()

    def test_never_goes_negative(self):
        spec = nearly_monotone_stream(2_000, deletion_fraction=0.3, seed=2)
        assert min(spec.values()) >= 0

    def test_grows_overall(self):
        spec = nearly_monotone_stream(2_000, deletion_fraction=0.2, seed=3)
        assert spec.final_value() > 500

    def test_zero_deletion_fraction_is_monotone(self):
        spec = nearly_monotone_stream(200, deletion_fraction=0.0, seed=4)
        assert spec.deltas == (1,) * 200

    def test_rejects_large_deletion_fraction(self):
        with pytest.raises(ConfigurationError):
            nearly_monotone_stream(100, deletion_fraction=0.6)

    def test_reproducible_with_seed(self):
        first = nearly_monotone_stream(300, seed=9)
        second = nearly_monotone_stream(300, seed=9)
        assert first.deltas == second.deltas


class TestRandomWalkStream:
    def test_unit_deltas(self):
        spec = random_walk_stream(1_000, seed=0)
        assert spec.is_unit_stream()

    def test_reproducible(self):
        assert random_walk_stream(100, seed=7).deltas == random_walk_stream(100, seed=7).deltas

    def test_different_seeds_differ(self):
        assert random_walk_stream(200, seed=1).deltas != random_walk_stream(200, seed=2).deltas

    def test_roughly_balanced(self):
        spec = random_walk_stream(10_000, seed=3)
        assert abs(spec.final_value()) < 1_000


class TestBiasedWalkStream:
    def test_positive_drift_grows(self):
        spec = biased_walk_stream(5_000, drift=0.4, seed=1)
        assert spec.final_value() > 1_000

    def test_drift_close_to_expectation(self):
        spec = biased_walk_stream(20_000, drift=0.3, seed=2)
        assert spec.final_value() == pytest.approx(0.3 * 20_000, rel=0.2)

    def test_rejects_zero_drift(self):
        with pytest.raises(ConfigurationError):
            biased_walk_stream(100, drift=0.0)

    def test_rejects_drift_above_one(self):
        with pytest.raises(ConfigurationError):
            biased_walk_stream(100, drift=1.5)

    def test_drift_one_is_monotone(self):
        spec = biased_walk_stream(100, drift=1.0, seed=0)
        assert spec.deltas == (1,) * 100


class TestAdversarialFlipStream:
    def test_values_flip_between_levels(self):
        spec = adversarial_flip_stream(10, level=5, flip_times=[3, 7])
        values = spec.values()
        assert values[:2] == [5, 5]
        assert values[2:6] == [8, 8, 8, 8]
        assert values[6:] == [5, 5, 5, 5]

    def test_start_value_is_level(self):
        spec = adversarial_flip_stream(5, level=4, flip_times=[])
        assert spec.start == 4
        assert set(spec.values()) == {4}

    def test_rejects_out_of_range_flips(self):
        with pytest.raises(ConfigurationError):
            adversarial_flip_stream(10, level=5, flip_times=[11])

    def test_variability_matches_flip_count(self):
        spec = adversarial_flip_stream(100, level=10, flip_times=[10, 20, 30, 40])
        expected = 2 * (3 / 13) + 2 * (3 / 10)
        assert variability(spec.deltas, start=spec.start) == pytest.approx(expected)


class TestSawtoothStream:
    def test_bounded_between_zero_and_amplitude(self):
        spec = sawtooth_stream(1_000, amplitude=20)
        values = spec.values()
        assert min(values) >= 0
        assert max(values) <= 20

    def test_unit_deltas(self):
        assert sawtooth_stream(100, amplitude=10).is_unit_stream()

    def test_high_variability(self):
        spec = sawtooth_stream(5_000, amplitude=10)
        # Each tooth of ~20 steps contributes ~2-3 variability, so it is ~linear.
        assert variability(spec.deltas) > 500

    def test_rejects_zero_amplitude(self):
        with pytest.raises(ConfigurationError):
            sawtooth_stream(100, amplitude=0)


class TestBurstyStream:
    def test_length(self):
        spec = bursty_stream(777, burst_length=50, seed=1)
        assert spec.length == 777

    def test_unit_deltas_and_non_negative(self):
        spec = bursty_stream(3_000, burst_length=32, seed=2)
        assert spec.is_unit_stream()
        assert min(spec.values()) >= -32  # a deletion burst can only start when value > burst

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            bursty_stream(100, burst_length=0)
        with pytest.raises(ConfigurationError):
            bursty_stream(100, deletion_burst_probability=1.5)


class TestPeriodicStream:
    def test_trend_dominates(self):
        spec = periodic_stream(4_000, period=200, trend=0.5)
        assert spec.final_value() > 1_000

    def test_emits_a_genuine_unit_stream(self):
        # Regression: the generator used to emit zero deltas (169 of 500 at
        # period=24, trend=0.5) despite promising collapse into +-1 steps.
        spec = periodic_stream(500, period=24, trend=0.5)
        assert spec.is_unit_stream()
        assert 0 < spec.length <= 500
        assert spec.params["emitted"] == spec.length

    def test_zero_steps_preserve_the_value_trajectory_endpoint(self):
        spec = periodic_stream(500, period=24, trend=0.5)
        # Skipping zero steps must not change where the stream ends up.
        assert spec.final_value() == int(round(0.5 * 500 + (24 / 8.0) * math.sin(2.0 * math.pi * 500 / 24)))

    def test_tracks_end_to_end_without_stream_error(self):
        # Regression: tracking used to raise StreamError on the zero deltas.
        from repro.core import DeterministicCounter

        spec = periodic_stream(500, period=24, trend=0.5)
        result = DeterministicCounter(4, 0.1).track(assign_sites(spec, 4))
        assert result.error_violations(0.1) == 0

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            periodic_stream(100, period=1)

    def test_rejects_non_positive_trend(self):
        with pytest.raises(ConfigurationError):
            periodic_stream(100, period=10, trend=0.0)


class TestDegenerateStreams:
    def test_constant_stream(self):
        spec = constant_stream(10, value=7)
        assert spec.values() == [7] * 10
        assert variability(spec.deltas) == pytest.approx(1.0)

    def test_sign_alternating_stream_variability_is_linear(self):
        spec = sign_alternating_stream(1_000)
        assert set(spec.values()) == {0, 1}
        assert variability(spec.deltas) == pytest.approx(1_000.0)
