"""Tests for variability-driven historical quantile tracking (Tao et al. connection)."""

import numpy as np
import pytest

from repro.core.history_quantiles import (
    HistoricalQuantileTracker,
    QuantileCheckpoint,
    ValueUpdate,
)
from repro.exceptions import ConfigurationError, QueryError, StreamError


def _mostly_growing_updates(n, seed, delete_probability=0.2):
    """Insert random values, occasionally deleting a previously inserted one."""
    rng = np.random.default_rng(seed)
    live = []
    updates = []
    for _ in range(n):
        if live and rng.random() < delete_probability:
            index = int(rng.integers(0, len(live)))
            value = live.pop(index)
            updates.append(ValueUpdate(value=value, delta=-1))
        else:
            value = float(rng.integers(0, 10_000))
            live.append(value)
            updates.append(ValueUpdate(value=value, delta=+1))
    return updates


def _dataset_at(updates, time):
    """Exact multiset contents after `time` updates."""
    values = []
    for update in updates[:time]:
        if update.delta > 0:
            values.append(update.value)
        else:
            values.remove(update.value)
    return sorted(values)


def _rank_error(sorted_values, answer, rank):
    low = np.searchsorted(sorted_values, answer, side="left") + 1
    high = np.searchsorted(sorted_values, answer, side="right")
    if low <= rank <= high:
        return 0
    return min(abs(rank - low), abs(rank - high))


class TestValueUpdate:
    def test_rejects_non_unit_delta(self):
        with pytest.raises(StreamError):
            ValueUpdate(value=1.0, delta=2)


class TestQuantileCheckpoint:
    def test_query_rank_picks_nearest_stored_quantile(self):
        checkpoint = QuantileCheckpoint(time=5, size=100, quantile_values=(1.0, 5.0, 9.0))
        assert checkpoint.query_rank(1) == 1.0
        assert checkpoint.query_rank(50) == 5.0
        assert checkpoint.query_rank(100) == 9.0

    def test_empty_dataset_raises(self):
        checkpoint = QuantileCheckpoint(time=1, size=0, quantile_values=())
        with pytest.raises(QueryError):
            checkpoint.query_rank(1)


class TestHistoricalQuantileTracker:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            HistoricalQuantileTracker(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            HistoricalQuantileTracker(epsilon=0.1, quantiles_per_checkpoint=1)

    def test_rejects_delete_of_missing_value(self):
        tracker = HistoricalQuantileTracker(epsilon=0.2)
        with pytest.raises(StreamError):
            tracker.update(ValueUpdate(value=3.0, delta=-1))

    def test_query_before_first_checkpoint_raises(self):
        tracker = HistoricalQuantileTracker(epsilon=0.2)
        with pytest.raises(QueryError):
            tracker.query_quantile(1, 0.5)

    def test_historical_rank_error_within_budget(self):
        epsilon = 0.2
        updates = _mostly_growing_updates(4_000, seed=1)
        tracker = HistoricalQuantileTracker(epsilon=epsilon)
        tracker.update_many(updates)
        rng = np.random.default_rng(2)
        query_times = sorted(int(t) for t in rng.integers(500, 4_000, size=12))
        for time in query_times:
            dataset = _dataset_at(updates, time)
            size = len(dataset)
            for phi in (0.25, 0.5, 0.75):
                rank = max(1, int(np.ceil(phi * size)))
                answer = tracker.query_rank(time, rank)
                # Checkpoint staleness plus snapshot compression both stay
                # within the eps |D(t)| regime (allow a factor-2 constant).
                assert _rank_error(dataset, answer, rank) <= 2 * epsilon * size + 1

    def test_summary_size_tracks_variability_not_length(self):
        epsilon = 0.2
        updates = _mostly_growing_updates(8_000, seed=3, delete_probability=0.1)
        tracker = HistoricalQuantileTracker(epsilon=epsilon)
        tracker.update_many(updates)
        # Checkpoint count is at most 2 v / eps + 1.
        assert len(tracker.checkpoints) <= 2 * tracker.variability / epsilon + 1
        # And the retained summary is far smaller than the stream.
        assert tracker.summary_size_values() < 0.5 * len(updates)

    def test_variability_matches_definition(self):
        updates = [ValueUpdate(value=float(i), delta=+1) for i in range(100)]
        tracker = HistoricalQuantileTracker(epsilon=0.1)
        tracker.update_many(updates)
        harmonic = sum(1.0 / i for i in range(1, 101))
        assert tracker.variability == pytest.approx(harmonic)

    def test_checkpoints_are_time_ordered(self):
        updates = _mostly_growing_updates(2_000, seed=4)
        tracker = HistoricalQuantileTracker(epsilon=0.25)
        tracker.update_many(updates)
        times = [c.time for c in tracker.checkpoints]
        assert times == sorted(times)
        assert tracker.time == 2_000

    def test_query_uses_latest_checkpoint_at_or_before(self):
        tracker = HistoricalQuantileTracker(epsilon=0.5, quantiles_per_checkpoint=3)
        tracker.update_many([ValueUpdate(value=float(i), delta=+1) for i in range(1, 50)])
        first_checkpoint_time = tracker.checkpoints[0].time
        # Query exactly at and just after the first checkpoint returns data
        # from a checkpoint no later than the query time.
        answer_at = tracker.query_quantile(first_checkpoint_time, 0.5)
        assert answer_at <= first_checkpoint_time
