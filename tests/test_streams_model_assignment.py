"""Tests for StreamSpec, delta/update conversion and site-assignment policies."""

import pytest

from repro.exceptions import ConfigurationError, StreamError
from repro.streams import (
    RandomAssignment,
    RoundRobinAssignment,
    SingleSiteAssignment,
    SkewedAssignment,
    assign_sites,
    monotone_stream,
    random_walk_stream,
)
from repro.streams.model import StreamSpec, deltas_to_updates, updates_to_deltas


class TestStreamSpec:
    def test_values_and_final_value(self):
        spec = StreamSpec(name="toy", deltas=(1, -1, 1, 1), start=2)
        assert spec.values() == [3, 2, 3, 4]
        assert spec.final_value() == 4

    def test_length(self):
        assert StreamSpec(name="toy", deltas=(1, 1, 1)).length == 3

    def test_is_unit_stream(self):
        assert StreamSpec(name="toy", deltas=(1, -1)).is_unit_stream()
        assert not StreamSpec(name="toy", deltas=(1, 2)).is_unit_stream()

    def test_describe_includes_params(self):
        spec = StreamSpec(name="toy", deltas=(1,), params={"seed": 3})
        assert "toy" in spec.describe()
        assert "seed=3" in spec.describe()

    def test_deltas_coerced_to_int_tuple(self):
        spec = StreamSpec(name="toy", deltas=[1.0, -1.0])
        assert spec.deltas == (1, -1)
        assert isinstance(spec.deltas, tuple)


class TestConversions:
    def test_roundtrip(self):
        deltas = [1, -1, 1, 1, -1]
        updates = deltas_to_updates(deltas, sites=[0, 1, 0, 1, 0])
        assert updates_to_deltas(updates) == deltas
        assert [u.time for u in updates] == [1, 2, 3, 4, 5]

    def test_length_mismatch_raises(self):
        with pytest.raises(StreamError):
            deltas_to_updates([1, 1], sites=[0])


class TestAssignmentPolicies:
    def test_round_robin_cycles(self):
        sites = RoundRobinAssignment().assign(7, num_sites=3)
        assert sites == [0, 1, 2, 0, 1, 2, 0]

    def test_round_robin_single_site(self):
        assert RoundRobinAssignment().assign(4, num_sites=1) == [0, 0, 0, 0]

    def test_random_assignment_in_range_and_reproducible(self):
        first = RandomAssignment(seed=3).assign(100, num_sites=5)
        second = RandomAssignment(seed=3).assign(100, num_sites=5)
        assert first == second
        assert set(first) <= set(range(5))

    def test_random_assignment_uses_all_sites(self):
        sites = RandomAssignment(seed=1).assign(1_000, num_sites=4)
        assert set(sites) == {0, 1, 2, 3}

    def test_skewed_assignment_prefers_site_zero(self):
        sites = SkewedAssignment(hot_fraction=0.9, seed=2).assign(2_000, num_sites=4)
        assert sites.count(0) > 1_500

    def test_skewed_assignment_validates_fraction(self):
        with pytest.raises(ConfigurationError):
            SkewedAssignment(hot_fraction=0.0)

    def test_single_site_assignment(self):
        assert SingleSiteAssignment().assign(5, num_sites=3) == [0] * 5

    def test_policies_reject_non_positive_sites(self):
        for policy in (RoundRobinAssignment(), RandomAssignment(), SingleSiteAssignment()):
            with pytest.raises(ConfigurationError):
                policy.assign(10, num_sites=0)


class TestAssignSites:
    def test_default_round_robin(self):
        spec = monotone_stream(6)
        updates = assign_sites(spec, num_sites=2)
        assert [u.site for u in updates] == [0, 1, 0, 1, 0, 1]

    def test_preserves_deltas(self):
        spec = random_walk_stream(100, seed=4)
        updates = assign_sites(spec, num_sites=3)
        assert tuple(u.delta for u in updates) == spec.deltas

    def test_custom_policy(self):
        spec = monotone_stream(4)
        updates = assign_sites(spec, num_sites=3, policy=SingleSiteAssignment())
        assert {u.site for u in updates} == {0}


class TestLazyAssignment:
    def test_assign_iter_matches_assign_for_index_pure_policies(self):
        from repro.streams import BlockedAssignment, assign_sites_iter
        from repro.streams.generators import random_walk_stream

        for policy in (
            RoundRobinAssignment(),
            BlockedAssignment(7),
            SingleSiteAssignment(),
        ):
            assert list(policy.assign_iter(50, 3)) == list(policy.assign(50, 3))

        spec = random_walk_stream(40, seed=2)
        lazy = list(assign_sites_iter(spec, 3, BlockedAssignment(7)))
        eager = assign_sites(spec, 3, BlockedAssignment(7))
        assert lazy == eager

    def test_assign_sites_iter_falls_back_for_stateful_policies(self):
        from repro.streams import assign_sites_iter
        from repro.streams.generators import random_walk_stream

        spec = random_walk_stream(40, seed=2)
        lazy = list(assign_sites_iter(spec, 3, RandomAssignment(seed=5)))
        eager = assign_sites(spec, 3, RandomAssignment(seed=5))
        assert lazy == eager
