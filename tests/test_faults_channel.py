"""Unit tests for the fault-injecting channel's ARQ layer and its accounting.

The load-bearing claim is *exact* accounting: every transmission attempt —
original or retransmission — is charged at send time, and after a full drain
the reliability counters satisfy the conservation law
``retransmitted == dropped + duplicates`` (each extra attempt exists because
an earlier one was lost, or presumed lost by a spurious timeout).  Around
that: the zero-loss plan must be inert (delegating wholly to the base
channel), duplicates must arise exactly when sampled latency can exceed the
retransmission timeout, kind-restricted plans must only touch their kinds,
seeded runs must be reproducible, and drains must wait for pending
retransmissions instead of declaring victory early.
"""

import pytest

from repro.asynchrony import (
    ConstantLatency,
    UniformLatency,
    build_async_network,
    run_tracking_async,
)
from repro.core import DeterministicCounter
from repro.exceptions import ConfigurationError
from repro.faults import (
    NO_LOSS,
    FaultPlan,
    FaultyChannel,
    GilbertElliottLoss,
    IIDLoss,
    RetransmitPolicy,
)
from repro.monitoring.messages import MessageKind
from repro.streams import RoundRobinAssignment, assign_sites, random_walk_stream

EPSILON = 0.1


def _updates(n=3_000, k=6, seed=2):
    return list(
        assign_sites(random_walk_stream(n, seed=seed), k, RoundRobinAssignment())
    )


def _lossy_network(plan, latency, k=6, seed=1):
    return build_async_network(
        DeterministicCounter(k, EPSILON), latency=latency, seed=seed, faults=plan
    )


class TestRetransmitPolicy:
    def test_rto_backs_off_exponentially_and_caps(self):
        policy = RetransmitPolicy(timeout=2.0, backoff=2.0, max_timeout=10.0)
        assert [policy.rto(i) for i in range(5)] == [2.0, 4.0, 8.0, 10.0, 10.0]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            RetransmitPolicy(timeout=0.0)
        with pytest.raises(ConfigurationError):
            RetransmitPolicy(backoff=0.5)
        with pytest.raises(ConfigurationError):
            RetransmitPolicy(timeout=4.0, max_timeout=2.0)


class TestFaultPlan:
    def test_defaults_are_inert(self):
        plan = FaultPlan()
        assert plan.lossless
        assert plan.build_model() is NO_LOSS

    def test_builds_fresh_model_per_call(self):
        plan = FaultPlan(loss=0.2, model="burst")
        first, second = plan.build_model(), plan.build_model()
        assert isinstance(first, GilbertElliottLoss)
        assert first is not second  # per-link chain state must not be shared

    def test_iid_model(self):
        assert isinstance(FaultPlan(loss=0.2).build_model(), IIDLoss)

    def test_with_seed_replaces_only_the_seed(self):
        plan = FaultPlan(loss=0.3, model="burst", seed=5)
        other = plan.with_seed(11)
        assert other.seed == 11
        assert (other.loss, other.model) == (0.3, "burst")
        assert plan.seed == 5  # frozen original untouched

    def test_rejects_loss_outside_unit_interval(self):
        for loss in (-0.1, 1.0):
            with pytest.raises(ConfigurationError):
                FaultPlan(loss=loss)

    def test_rejects_unknown_model(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(loss=0.1, model="solar-flare")

    def test_rejects_infeasible_burst_eagerly(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(loss=0.9, model="burst", burst_length=1.0)

    def test_kinds_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(loss=0.1, kinds=frozenset())
        with pytest.raises(ConfigurationError):
            FaultPlan(loss=0.1, kinds=frozenset({"report"}))
        plan = FaultPlan(loss=0.1, kinds={MessageKind.REPORT})
        assert plan.kinds == frozenset({MessageKind.REPORT})


class TestInertBypass:
    def test_zero_loss_supports_span_events(self):
        channel = FaultyChannel(4, plan=FaultPlan())
        assert channel.supports_span_events

    def test_lossy_plan_disables_span_events(self):
        channel = FaultyChannel(4, plan=FaultPlan(loss=0.1))
        assert not channel.supports_span_events

    def test_zero_loss_run_has_no_reliability_traffic(self):
        network = _lossy_network(FaultPlan(), UniformLatency(0.5, 2.0))
        assert isinstance(network.channel, FaultyChannel)
        result = run_tracking_async(network, _updates())
        assert (result.dropped, result.retransmitted, result.duplicates) == (0, 0, 0)


class TestConservationLaws:
    @pytest.mark.parametrize(
        "plan,latency",
        [
            (FaultPlan(loss=0.15, seed=7), UniformLatency(1.0, 8.0)),
            (FaultPlan(loss=0.25, model="burst", seed=3), UniformLatency(0.5, 3.0)),
            (FaultPlan(loss=0.1, seed=9), ConstantLatency(0.0)),
        ],
    )
    def test_retransmitted_equals_dropped_plus_duplicates(self, plan, latency):
        network = _lossy_network(plan, latency)
        result = run_tracking_async(network, _updates())
        stats = network.channel.stats
        assert stats.dropped > 0
        assert stats.retransmitted == stats.dropped + stats.duplicates
        # Every logical message is delivered exactly once; the rest of the
        # charged traffic is exactly the retransmissions.
        assert stats.messages == len(network.channel.delivery_ages) + stats.retransmitted
        # The scalar counters and their per-kind decompositions agree.
        assert sum(stats.dropped_by_kind.values()) == stats.dropped
        assert sum(stats.retransmitted_by_kind.values()) == stats.retransmitted
        assert sum(stats.duplicates_by_kind.values()) == stats.duplicates
        # And the result surfaces the same totals.
        assert (result.dropped, result.retransmitted, result.duplicates) == (
            stats.dropped,
            stats.retransmitted,
            stats.duplicates,
        )

    def test_drain_leaves_nothing_in_flight(self):
        network = _lossy_network(
            FaultPlan(loss=0.3, seed=5), UniformLatency(1.0, 8.0)
        )
        run_tracking_async(network, _updates())
        assert network.channel.in_flight == 0

    def test_summary_surfaces_reliability(self):
        network = _lossy_network(FaultPlan(loss=0.2, seed=1), UniformLatency(1.0, 6.0))
        result = run_tracking_async(network, _updates())
        reliability = result.summary(EPSILON)["reliability"]
        assert reliability == {
            "dropped": result.dropped,
            "retransmitted": result.retransmitted,
            "duplicates": result.duplicates,
        }
        assert reliability["retransmitted"] == (
            reliability["dropped"] + reliability["duplicates"]
        )


class TestDuplicateSemantics:
    def test_fast_links_never_duplicate(self):
        # Latency strictly below the base timeout: no spurious timers, so
        # every retransmission answers a genuine drop.
        plan = FaultPlan(
            loss=0.2, seed=4, retransmit=RetransmitPolicy(timeout=4.0)
        )
        network = _lossy_network(plan, ConstantLatency(1.0))
        result = run_tracking_async(network, _updates())
        assert result.dropped > 0
        assert result.duplicates == 0
        assert result.retransmitted == result.dropped

    def test_slow_tail_produces_honest_duplicates(self):
        # Latency can exceed the timeout, so some copies are presumed lost
        # while still on the wire: the retransmitted copy races the slow
        # original and the loser is suppressed as a duplicate.
        plan = FaultPlan(
            loss=0.1, seed=4, retransmit=RetransmitPolicy(timeout=4.0)
        )
        network = _lossy_network(plan, UniformLatency(1.0, 8.0))
        result = run_tracking_async(network, _updates())
        assert result.duplicates > 0
        assert result.retransmitted == result.dropped + result.duplicates


class TestKindRestriction:
    def test_only_listed_kinds_are_faulted(self):
        plan = FaultPlan(loss=0.3, seed=6, kinds={MessageKind.REPORT})
        network = _lossy_network(plan, UniformLatency(0.5, 2.0))
        run_tracking_async(network, _updates())
        stats = network.channel.stats
        assert stats.dropped > 0
        assert set(stats.dropped_by_kind) == {"report"}
        assert set(stats.retransmitted_by_kind) <= {"report"}
        assert set(stats.duplicates_by_kind) <= {"report"}


class TestReproducibility:
    def test_same_seeds_same_run(self):
        def run():
            network = _lossy_network(
                FaultPlan(loss=0.2, model="burst", seed=8),
                UniformLatency(1.0, 6.0),
            )
            result = run_tracking_async(network, _updates())
            return (
                [(r.time, r.estimate, r.messages) for r in result.records],
                result.dropped,
                result.retransmitted,
                result.duplicates,
            )

        assert run() == run()

    def test_different_loss_seed_changes_the_run(self):
        def run(seed):
            network = _lossy_network(
                FaultPlan(loss=0.2, seed=seed), UniformLatency(1.0, 6.0)
            )
            return run_tracking_async(network, _updates()).dropped

        assert run(1) != run(2)
