"""Equivalence in the kernel cells the closed forms were last to cover.

PR 4's multiblock hook handled only the dense regime (``eps * 2**r <= 1``)
and PR 5's fast-forward cut its window at the first block-level change, so
the sparse regime and cross-level ladders used to fall back to per-update
replay — precisely the cells the existing equivalence suites never forced.
This suite engineers streams into those cells and asserts bit-for-bit
equivalence across {deterministic, randomized} x {flat, levels=3 tree} x
{sync, zero-latency async}, plus the tree-direct columnar engine against
``run_tracking`` on the same trace.

A non-hypothesis vacuity guard instruments the multiblock hook directly and
asserts that the engineered streams really do drive it into the sparse
branch and into ladders spanning 2+ levels — without it, every equivalence
assertion here could pass on the dense same-level path alone.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asynchrony import (
    ConstantLatency,
    build_async_network,
    build_tree_async_network,
    run_tracking_async,
)
from repro.core import DeterministicCounter, RandomizedCounter
from repro.monitoring.runner import (
    run_tracking,
    run_tracking_arrays,
    run_tracking_tree_arrays,
)
from repro.monitoring.tree import build_tree_network
from repro.engine import SpanKernel
from repro.streams import (
    BlockedAssignment,
    assign_sites,
    biased_walk_stream,
    nearly_monotone_stream,
    oscillating_stream,
)
from repro.streams.io import columns_from_updates

#: eps = 0.5 puts the deterministic threshold above one update from level 1
#: up (0.5 * 2**1 = 1, 0.5 * 2**2 = 2 > 1): the sparse regime starts as soon
#: as the value climbs at all.
SPARSE_EPSILON = 0.5

FACTORIES = {
    "deterministic": lambda k, eps, seed: DeterministicCounter(k, eps),
    "randomized": lambda k, eps, seed: RandomizedCounter(k, eps, seed=seed),
}

#: Streams that climb: consecutive block closes walk up the level ladder, so
#: long same-site blocks hand the kernel windows whose closes cross levels.
CLIMBING_STREAMS = {
    "biased_walk": lambda n, seed: biased_walk_stream(n, drift=0.8, seed=seed),
    "nearly_monotone": lambda n, seed: nearly_monotone_stream(n, seed=seed),
}

#: Streams that oscillate: mean reversion keeps the value crossing band
#: edges in both directions, so block closes *descend* the level ladder as
#: often as they climb — the schedule shape the descent-capable kernel
#: (``SpanKernel(descent=True)``, the default) exists for.
OSCILLATING_STREAMS = {
    "oscillating_tight": lambda n, seed: oscillating_stream(
        n, target=24, pull=0.12, seed=seed
    ),
    "oscillating_loose": lambda n, seed: oscillating_stream(
        n, target=40, pull=0.06, seed=seed
    ),
}


def _fingerprint(result):
    """Everything observable about a run: records, totals, kind breakdown."""
    return (
        [
            (r.time, r.true_value, r.estimate, r.messages, r.bits)
            for r in result.records
        ],
        result.total_messages,
        result.total_bits,
        result.messages_by_kind,
    )


def _local_fingerprint(result, network):
    """Estimates plus merged leaf-channel counters, for tree topologies.

    Every aggregated level's push counts legitimately differ with delivery
    granularity (see the push-granularity note in
    ``repro.monitoring.sharding``), so per-update vs batched on a tree
    compares the records' estimates and the leaf-level protocol traffic —
    the part the span kernel owns — not the uplink transcript.
    """
    from repro.monitoring.channel import ChannelStats

    leaf_stats = ChannelStats.merge(leaf.stats for leaf in network.leaves())
    return (
        [(r.time, r.true_value, r.estimate) for r in result.records],
        leaf_stats.messages,
        leaf_stats.bits,
        leaf_stats.by_kind,
    )


def _updates(stream_name, length, num_sites, block, seed):
    spec = CLIMBING_STREAMS[stream_name](length, seed)
    return assign_sites(spec, num_sites, BlockedAssignment(block))


def _oscillating_updates(stream_name, length, num_sites, block, seed):
    spec = OSCILLATING_STREAMS[stream_name](length, seed)
    return assign_sites(spec, num_sites, BlockedAssignment(block))


class TestSparseAndCrossLevelCells:
    """The hypothesis sweep over the previously skipped cells."""

    @settings(max_examples=20, deadline=None)
    @given(
        factory_name=st.sampled_from(sorted(FACTORIES)),
        stream_name=st.sampled_from(sorted(CLIMBING_STREAMS)),
        num_sites=st.integers(min_value=1, max_value=4),
        length=st.integers(min_value=600, max_value=2500),
        block=st.sampled_from([256, 1024]),
        record_every=st.sampled_from([1, 53, 400]),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    def test_flat_sync_bit_for_bit(
        self, factory_name, stream_name, num_sites, length, block, record_every, seed
    ):
        updates = _updates(stream_name, length, num_sites, block, seed)

        def run(batched):
            factory = FACTORIES[factory_name](num_sites, SPARSE_EPSILON, seed)
            network = factory.build_network()
            result = run_tracking(
                network, updates, record_every=record_every, batched=batched
            )
            return result

        assert _fingerprint(run(False)) == _fingerprint(run(True))

    @settings(max_examples=12, deadline=None)
    @given(
        factory_name=st.sampled_from(sorted(FACTORIES)),
        stream_name=st.sampled_from(sorted(CLIMBING_STREAMS)),
        length=st.integers(min_value=600, max_value=2000),
        record_every=st.sampled_from([1, 83]),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    def test_tree_sync_levels_match(
        self, factory_name, stream_name, length, record_every, seed
    ):
        num_sites = 4
        updates = _updates(stream_name, length, num_sites, 512, seed)

        def run(batched):
            factory = FACTORIES[factory_name](num_sites, SPARSE_EPSILON, seed)
            network = build_tree_network(factory, levels=3, fanout=2)
            result = run_tracking(
                network, updates, record_every=record_every, batched=batched
            )
            return result, network

        slow, slow_network = run(False)
        fast, fast_network = run(True)
        assert _local_fingerprint(slow, slow_network) == _local_fingerprint(
            fast, fast_network
        )

    @settings(max_examples=12, deadline=None)
    @given(
        factory_name=st.sampled_from(sorted(FACTORIES)),
        stream_name=st.sampled_from(sorted(CLIMBING_STREAMS)),
        num_sites=st.integers(min_value=1, max_value=4),
        length=st.integers(min_value=600, max_value=2000),
        record_every=st.sampled_from([1, 67]),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    def test_flat_zero_latency_async_bit_for_bit(
        self, factory_name, stream_name, num_sites, length, record_every, seed
    ):
        updates = _updates(stream_name, length, num_sites, 512, seed)

        def run(batched):
            factory = FACTORIES[factory_name](num_sites, SPARSE_EPSILON, seed)
            network = build_async_network(
                factory, latency=ConstantLatency(0.0), seed=0
            )
            return run_tracking_async(
                network, updates, record_every=record_every, batched=batched
            )

        assert _fingerprint(run(False)) == _fingerprint(run(True))

    @settings(max_examples=8, deadline=None)
    @given(
        factory_name=st.sampled_from(sorted(FACTORIES)),
        stream_name=st.sampled_from(sorted(CLIMBING_STREAMS)),
        length=st.integers(min_value=600, max_value=1500),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    def test_tree_zero_latency_async_levels_match(
        self, factory_name, stream_name, length, seed
    ):
        num_sites = 4
        updates = _updates(stream_name, length, num_sites, 512, seed)

        def run(batched):
            factory = FACTORIES[factory_name](num_sites, SPARSE_EPSILON, seed)
            network = build_tree_async_network(
                factory,
                levels=3,
                fanout=2,
                latency=ConstantLatency(0.0),
                seed=0,
            )
            result = run_tracking_async(
                network, updates, record_every=61, batched=batched
            )
            return result, network

        slow, slow_network = run(False)
        fast, fast_network = run(True)
        assert _local_fingerprint(slow, slow_network) == _local_fingerprint(
            fast, fast_network
        )

    @settings(max_examples=12, deadline=None)
    @given(
        factory_name=st.sampled_from(sorted(FACTORIES)),
        stream_name=st.sampled_from(sorted(CLIMBING_STREAMS)),
        length=st.integers(min_value=600, max_value=2000),
        record_every=st.sampled_from([1, 71]),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    def test_tree_arrays_matches_run_tracking(
        self, factory_name, stream_name, length, record_every, seed
    ):
        """The tree-direct columnar engine against run_tracking on one trace."""
        num_sites = 6
        updates = _updates(stream_name, length, num_sites, 512, seed)
        columns = columns_from_updates(updates)

        def network():
            factory = FACTORIES[factory_name](num_sites, SPARSE_EPSILON, seed)
            return build_tree_network(factory, levels=3, fanout=2)

        batched = run_tracking(
            network(), updates, record_every=record_every, batched=True
        )
        arrays = run_tracking_arrays(
            network(),
            columns.times,
            columns.sites,
            columns.deltas,
            record_every=record_every,
        )
        tree_net = network()
        tree = run_tracking_tree_arrays(
            tree_net,
            columns.times,
            columns.sites,
            columns.deltas,
            record_every=record_every,
        )
        assert _fingerprint(batched) == _fingerprint(arrays) == _fingerprint(tree)
        assert batched.levels == arrays.levels == tree.levels


def _set_kernel(network, kernel):
    """Install ``kernel`` on every site of a flat (possibly async) network."""
    for site in network.sites:
        site.span_kernel = kernel


class TestDescentScheduleCells:
    """Oscillating (up-*and*-down) level schedules across every topology cell.

    Each hypothesis example draws one cell of {deterministic, randomized} x
    {flat, levels=3 tree} x {sync, zero-latency async} and runs the same
    oscillating workload per-update and batched — bit for bit.  The flat
    cells additionally race ``SpanKernel(descent=False)`` (the monotone
    ladder the descent kernel replaced) as a third run, pinning that the
    descent optimisation changed the speed and nothing else — including the
    randomized tracker's RNG draw count.
    """

    @settings(max_examples=24, deadline=None)
    @given(
        factory_name=st.sampled_from(sorted(FACTORIES)),
        stream_name=st.sampled_from(sorted(OSCILLATING_STREAMS)),
        topology=st.sampled_from(["flat", "tree"]),
        transport=st.sampled_from(["sync", "async"]),
        epsilon=st.sampled_from([0.1, SPARSE_EPSILON]),
        length=st.integers(min_value=600, max_value=2500),
        block=st.sampled_from([256, 1024]),
        record_every=st.sampled_from([1, 53, 400]),
        seed=st.integers(min_value=0, max_value=5_000),
    )
    def test_descent_cells_bit_for_bit(
        self,
        factory_name,
        stream_name,
        topology,
        transport,
        epsilon,
        length,
        block,
        record_every,
        seed,
    ):
        num_sites = 4 if topology == "tree" else 2
        updates = _oscillating_updates(stream_name, length, num_sites, block, seed)

        def run(batched, kernel=None):
            factory = FACTORIES[factory_name](num_sites, epsilon, seed)
            if topology == "tree":
                if transport == "async":
                    network = build_tree_async_network(
                        factory,
                        levels=3,
                        fanout=2,
                        latency=ConstantLatency(0.0),
                        seed=0,
                    )
                    result = run_tracking_async(
                        network, updates, record_every=record_every, batched=batched
                    )
                else:
                    network = build_tree_network(factory, levels=3, fanout=2)
                    result = run_tracking(
                        network, updates, record_every=record_every, batched=batched
                    )
                return _local_fingerprint(result, network)
            if transport == "async":
                network = build_async_network(
                    factory, latency=ConstantLatency(0.0), seed=0
                )
                if kernel is not None:
                    _set_kernel(network, kernel)
                result = run_tracking_async(
                    network, updates, record_every=record_every, batched=batched
                )
            else:
                network = factory.build_network()
                if kernel is not None:
                    _set_kernel(network, kernel)
                result = run_tracking(
                    network, updates, record_every=record_every, batched=batched
                )
            return _fingerprint(result)

        slow = run(False)
        fast = run(True)
        assert slow == fast
        if topology == "flat":
            monotone = run(True, kernel=SpanKernel(descent=False))
            assert monotone == fast


class TestCellsAreActuallyHit:
    """Vacuity guard: the engineered streams reach the new kernel branches."""

    @pytest.mark.parametrize("factory_name", sorted(FACTORIES))
    def test_sparse_and_multi_level_windows_fire(self, factory_name):
        num_sites = 2
        updates = _updates("biased_walk", 4_000, num_sites, 1_024, seed=3)
        factory = FACTORIES[factory_name](num_sites, SPARSE_EPSILON, 3)
        network = factory.build_network()
        calls = {"sparse": 0, "cross": 0, "two_plus_levels": 0}
        for site in network.sites:
            original = site.on_multiblock_window

            def wrapped(
                deltas,
                start,
                length,
                cycle_length,
                close_offsets=None,
                levels=None,
                _original=original,
                _site=site,
            ):
                if _site.level > 0 and SPARSE_EPSILON * 2 ** _site.level > 1:
                    calls["sparse"] += 1
                if close_offsets is not None:
                    calls["cross"] += 1
                    span = int(np.max(levels)) - min(
                        int(np.min(levels)), _site.level
                    )
                    if span >= 2:
                        calls["two_plus_levels"] += 1
                return _original(
                    deltas,
                    start,
                    length,
                    cycle_length,
                    close_offsets=close_offsets,
                    levels=levels,
                )

            site.on_multiblock_window = wrapped
        fast = run_tracking(network, updates, record_every=500, batched=True)
        assert calls["sparse"] > 0, calls
        assert calls["cross"] > 0, calls
        assert calls["two_plus_levels"] > 0, calls
        # And the instrumented run still matches per-update delivery.
        reference = FACTORIES[factory_name](num_sites, SPARSE_EPSILON, 3).track(
            updates, record_every=500, batched=False
        )
        assert _fingerprint(reference) == _fingerprint(fast)
        assert network.coordinator.level >= 2

    @pytest.mark.parametrize("factory_name", sorted(FACTORIES))
    @pytest.mark.parametrize("epsilon", [0.1, SPARSE_EPSILON])
    def test_descending_schedules_fire(self, factory_name, epsilon):
        """Oscillating streams hand the hook windows whose levels *descend*.

        Without this, every assertion in :class:`TestDescentScheduleCells`
        could pass on climbing-only schedules — the cell PR 8 already
        covered.  The tight oscillating stream must produce cross-level
        windows in which a later close sits at a *lower* level than an
        earlier one (eps=0.1 keeps those windows all-dense, the vectorised
        descent path; eps=0.5 pushes them sparse).
        """
        num_sites = 2
        updates = _oscillating_updates(
            "oscillating_tight", 8_000, num_sites, 1_024, seed=7
        )
        factory = FACTORIES[factory_name](num_sites, epsilon, 7)
        network = factory.build_network()
        calls = {"cross": 0, "descending": 0}
        for site in network.sites:
            original = site.on_multiblock_window

            def wrapped(
                deltas,
                start,
                length,
                cycle_length,
                close_offsets=None,
                levels=None,
                _original=original,
            ):
                if close_offsets is not None:
                    calls["cross"] += 1
                    if levels is not None and np.any(np.diff(levels) < 0):
                        calls["descending"] += 1
                return _original(
                    deltas,
                    start,
                    length,
                    cycle_length,
                    close_offsets=close_offsets,
                    levels=levels,
                )

            site.on_multiblock_window = wrapped
        fast = run_tracking(network, updates, record_every=500, batched=True)
        assert calls["cross"] > 0, calls
        assert calls["descending"] > 0, calls
        # The instrumented descent run still matches per-update delivery.
        reference = FACTORIES[factory_name](num_sites, epsilon, 7).track(
            updates, record_every=500, batched=False
        )
        assert _fingerprint(reference) == _fingerprint(fast)
