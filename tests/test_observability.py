"""The observability layer: metrics model, exposition format, tracing, hooks.

Three claims under test.  First, the dependency-free metrics registry
implements the Prometheus data model correctly — monotone counters,
labelled children, cumulative histogram buckets, and text exposition
v0.0.4 output byte patterns.  Second, the ring-buffered trace log keeps
exactly the last ``capacity`` events with monotone sequence numbers and
well-formed spans.  Third — the load-bearing claim — instrumenting a
network *reports* the protocol instead of changing it: every counter the
observers accumulate equals the corresponding channel/coordinator number
the protocol already maintained, across flat, sharded, tree and
asynchronous topologies, and across a live migration's re-attach.
(Bit-for-bit equivalence of the instrumented run itself is property-tested
in ``tests/test_observability_equivalence.py``.)
"""

import json
import math

import pytest

from repro.core import DeterministicCounter
from repro.exceptions import ConfigurationError
from repro.monitoring import (
    ChannelStats,
    build_sharded_network,
    build_tree_network,
    migrate_site,
    run_tracking,
)
from repro.asynchrony import UniformLatency, build_async_network, run_tracking_async
from repro.observability import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NetworkInstrumentation,
    TraceLog,
    instrument_network,
)
from repro.streams import RoundRobinAssignment, assign_sites, random_walk_stream

EPSILON = 0.15


def _updates(n, k, seed=7):
    return list(
        assign_sites(random_walk_stream(n, seed=seed), k, RoundRobinAssignment())
    )


def _series_sum(family):
    """Sum of every plain sample in a counter/gauge family."""
    return sum(value for suffix, _, value in family.samples() if suffix == "")


def _series_by_label(family, label_index=0):
    """Map one label value -> sample value for a single-label family."""
    return {
        key[label_index]: value
        for suffix, key, value in family.samples()
        if suffix == ""
    }


class TestMetricsPrimitives:
    def test_counter_is_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_test_gauge", "help")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_test_seconds", "help", buckets=(1.0, 2.0, 4.0)
        )
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        samples = list(registry.get("repro_test_seconds").samples())
        buckets = {key[-1]: value for suffix, key, value in samples if suffix == "_bucket"}
        assert buckets == {"1": 1, "2": 2, "4": 3, "+Inf": 4}
        sums = {suffix: value for suffix, _, value in samples if suffix != "_bucket"}
        assert sums["_count"] == 4
        assert sums["_sum"] == pytest.approx(105.0)

    def test_labeled_children_are_stable_and_checked(self):
        family = MetricsRegistry().counter("repro_kinds_total", "h", labels=("kind",))
        child = family.labels(kind="report")
        child.inc(3)
        assert family.labels(kind="report") is child
        assert family.labels(kind="report").value == 3.0
        with pytest.raises(ConfigurationError):
            family.labels(wrong="x")
        with pytest.raises(ConfigurationError):
            family.inc()  # labeled family has no implicit child

    def test_invalid_names_fail_loudly(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("0bad", "h")
        with pytest.raises(ConfigurationError):
            registry.counter("repro_ok_total", "h", labels=("bad-label",))


class TestRegistry:
    def test_reregistration_is_idempotent_but_type_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", "h", labels=("kind",))
        assert registry.counter("repro_x_total", "other", labels=("kind",)) is first
        with pytest.raises(ConfigurationError):
            registry.gauge("repro_x_total", "h", labels=("kind",))
        with pytest.raises(ConfigurationError):
            registry.counter("repro_x_total", "h", labels=("level",))

    def test_collectors_run_at_render_time(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_derived", "h")
        state = {"value": 1.0}
        registry.add_collector(lambda: gauge.set(state["value"]))
        assert "repro_derived 1\n" in registry.render()
        state["value"] = 42.0
        assert "repro_derived 42\n" in registry.render()

    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_msgs_total", "Messages by kind.", labels=("kind",)
        ).labels(kind='quo"te\nnl\\bs').inc(7)
        registry.gauge("repro_estimate", "Current estimate.").set(2.5)
        registry.histogram("repro_age", "Ages.", buckets=(1.0,)).observe(0.5)
        text = registry.render()
        assert text.endswith("\n")
        # Families render sorted by name, HELP before TYPE before samples.
        assert text.index("repro_age") < text.index("repro_estimate") < text.index(
            "repro_msgs_total"
        )
        assert "# HELP repro_msgs_total Messages by kind.\n" in text
        assert "# TYPE repro_msgs_total counter\n" in text
        assert 'repro_msgs_total{kind="quo\\"te\\nnl\\\\bs"} 7\n' in text
        assert "repro_estimate 2.5\n" in text
        assert 'repro_age_bucket{le="1"} 1\n' in text
        assert 'repro_age_bucket{le="+Inf"} 1\n' in text
        assert "repro_age_sum 0.5\n" in text
        assert "repro_age_count 1\n" in text

    def test_integer_values_render_bare_and_specials_spelled(self):
        registry = MetricsRegistry()
        registry.gauge("repro_int", "h").set(3.0)
        registry.gauge("repro_inf", "h").set(math.inf)
        registry.gauge("repro_nan", "h").set(math.nan)
        text = registry.render()
        assert "repro_int 3\n" in text
        assert "repro_inf +Inf\n" in text
        assert "repro_nan NaN\n" in text

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestTraceLog:
    def test_emit_sequences_and_ring_eviction(self):
        log = TraceLog(capacity=3)
        for i in range(5):
            log.emit("tick", time=float(i), index=i)
        assert len(log) == 3
        assert log.emitted == 5
        assert [event.seq for event in log] == [2, 3, 4]
        assert [event.fields["index"] for event in log.named("tick")] == [2, 3, 4]

    def test_span_records_duration_and_merged_fields(self):
        log = TraceLog()
        span = log.begin_span("block_close", 10.0, level=1)
        event = span.end(12.5, new_level=4)
        assert event.fields["start"] == 10.0
        assert event.fields["end"] == 12.5
        assert event.fields["duration"] == pytest.approx(2.5)
        assert event.fields["level"] == 1
        assert event.fields["new_level"] == 4
        with pytest.raises(ConfigurationError):
            span.end(13.0)

    def test_json_round_trip_and_dump(self, tmp_path):
        log = TraceLog()
        log.emit("send", time=1.0, kind="report")
        payload = json.loads(log.to_json())
        assert payload[0]["name"] == "send"
        assert payload[0]["kind"] == "report"
        path = tmp_path / "trace.json"
        assert log.dump(path) == 1
        assert json.loads(path.read_text()) == payload

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            TraceLog(capacity=0)


class TestInstrumentationCountsMatchProtocol:
    def test_flat_network_counters_equal_channel_stats(self):
        updates = _updates(600, 4)
        network = DeterministicCounter(4, EPSILON).build_network()
        instr = instrument_network(network)
        result = run_tracking(network, updates)
        instr.registry.collect()
        messages = instr.registry.get("repro_messages_total")
        bits = instr.registry.get("repro_bits_total")
        assert _series_sum(messages) == result.total_messages
        assert _series_sum(bits) == result.total_bits
        by_kind = {}
        for suffix, (kind, _level), value in messages.samples():
            by_kind[kind] = by_kind.get(kind, 0) + value
        assert by_kind == {
            kind: float(count) for kind, count in result.messages_by_kind.items()
        }

    def test_sharded_per_level_counters_match_level_summary(self):
        updates = _updates(800, 6)
        network = build_sharded_network(DeterministicCounter(6, EPSILON), 3)
        instr = instrument_network(network)
        run_tracking(network, updates)
        instr.registry.collect()
        messages = instr.registry.get("repro_messages_total")
        per_level = {}
        for suffix, (_kind, level), value in messages.samples():
            per_level[int(level)] = per_level.get(int(level), 0) + value
        expected = {
            row["level"]: float(row["messages"]) for row in network.level_summary()
        }
        assert per_level == expected

    def test_block_close_counters_and_scrape_gauges(self):
        updates = _updates(600, 4)
        network = DeterministicCounter(4, EPSILON).build_network()
        trace = TraceLog()
        instr = instrument_network(network, trace=trace)
        run_tracking(network, updates)
        closes = instr.registry.get("repro_block_closes_total")
        assert _series_sum(closes) == network.coordinator.blocks_completed > 0
        text = instr.registry.render()  # runs the collector
        assert (
            f'repro_blocks_completed{{level="0"}} '
            f"{network.coordinator.blocks_completed}\n" in text
        )
        assert (
            f'repro_block_level{{level="0"}} {network.coordinator.level}\n' in text
        )
        spans = trace.named("block_close")
        assert len(spans) == network.coordinator.blocks_completed
        assert all(event.fields["duration"] >= 0 for event in spans)
        assert len(trace.named("send")) > 0

    def test_level_share_gauges_match_analysis(self):
        updates = _updates(500, 8)
        network = build_sharded_network(DeterministicCounter(8, EPSILON), 2)
        instr = instrument_network(network)
        run_tracking(network, updates)
        instr.registry.collect()
        from repro.analysis.metrics import level_message_shares, shard_imbalance

        shares = _series_by_label(instr.registry.get("repro_level_message_share"))
        expected = level_message_shares(network.level_summary())
        assert shares == {
            str(level): pytest.approx(share) for level, share in enumerate(expected)
        }
        imbalance = instr.registry.get("repro_shard_imbalance")
        assert imbalance.value == pytest.approx(shard_imbalance(network.shard_stats()))

    def test_async_deliveries_feed_histogram_and_staleness_gauges(self):
        updates = _updates(400, 4)
        network = build_async_network(
            DeterministicCounter(4, EPSILON), latency=UniformLatency(0.5, 2.0), seed=3
        )
        instr = instrument_network(network)
        result = run_tracking_async(network, updates)
        instr.registry.collect()
        deliveries = instr.registry.get("repro_deliveries_total")
        assert _series_sum(deliveries) == result.staleness.delivered > 0
        age = instr.registry.get("repro_delivery_age")
        counts = {
            suffix: value
            for suffix, _, value in age.samples()
            if suffix == "_count"
        }
        assert counts["_count"] == result.staleness.delivered
        text = instr.registry.render()
        assert (
            f"repro_staleness_max_age {result.staleness.max_age}\n" in text
            or "repro_staleness_max_age" in text
        )
        mean = instr.registry.get("repro_staleness_mean_age")
        assert mean.value == pytest.approx(result.staleness.mean_age)

    def test_reliability_counters_match_faulty_channel_stats(self):
        from repro.faults import FaultPlan

        updates = _updates(900, 4)
        network = build_async_network(
            DeterministicCounter(4, EPSILON),
            latency=UniformLatency(1.0, 8.0),
            seed=3,
            faults=FaultPlan(loss=0.15, seed=7),
        )
        instr = instrument_network(network)
        result = run_tracking_async(network, updates)
        instr.registry.collect()
        stats = network.channel.stats
        assert result.dropped > 0
        for name, scalar, per_kind in (
            ("repro_dropped_total", stats.dropped, stats.dropped_by_kind),
            (
                "repro_retransmissions_total",
                stats.retransmitted,
                stats.retransmitted_by_kind,
            ),
            ("repro_duplicates_total", stats.duplicates, stats.duplicates_by_kind),
        ):
            family = instr.registry.get(name)
            assert _series_sum(family) == float(scalar)
            by_kind = {}
            for suffix, (kind, _level), value in family.samples():
                by_kind[kind] = by_kind.get(kind, 0) + value
            assert by_kind == {
                kind: float(count) for kind, count in per_kind.items()
            }

    def test_lossless_scrape_has_no_reliability_series(self):
        updates = _updates(400, 4)
        network = build_async_network(
            DeterministicCounter(4, EPSILON), latency=UniformLatency(0.5, 2.0), seed=3
        )
        instr = instrument_network(network)
        run_tracking_async(network, updates)
        instr.registry.collect()
        text = instr.registry.render()
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert not line.startswith(
                ("repro_dropped_total{", "repro_retransmissions_total{",
                 "repro_duplicates_total{")
            )

    def test_migration_bumps_counter_and_keeps_counting(self):
        k, shards = 8, 2
        updates = _updates(1200, k)
        network = build_sharded_network(DeterministicCounter(k, EPSILON), shards)
        instr = instrument_network(network)
        split = len(updates) // 2
        run_tracking(network, updates[:split])
        instr.registry.collect()
        before = _series_sum(instr.registry.get("repro_messages_total"))
        migrate_site(network, site_id=0, dest_leaf=1, time=split)
        assert instr.registry.get("repro_migrations_total").value == 1.0
        run_tracking(network, updates[split:])
        instr.registry.collect()
        after = _series_sum(instr.registry.get("repro_messages_total"))
        # The rebuilt leaves' fresh channels adopted the old accounting, so
        # the post-handoff suffix (and the handoff itself) kept accumulating.
        assert after > before
        assert after == network.stats.messages

    def test_tree_topology_levels_are_root_first(self):
        updates = _updates(600, 8)
        network = build_tree_network(DeterministicCounter(8, EPSILON), fanouts=(2, 2))
        instr = instrument_network(network)
        run_tracking(network, updates)
        instr.registry.collect()
        messages = instr.registry.get("repro_messages_total")
        levels = {int(key[1]) for suffix, key, value in messages.samples()}
        assert levels == {0, 1, 2}
        per_level = {}
        for suffix, (_kind, level), value in messages.samples():
            per_level[int(level)] = per_level.get(int(level), 0) + value
        expected = {
            row["level"]: float(row["messages"]) for row in network.level_summary()
        }
        assert per_level == expected

    def test_attach_is_idempotent(self):
        network = DeterministicCounter(3, EPSILON).build_network()
        instr = NetworkInstrumentation(trace=TraceLog())
        instr.attach(network)
        observer = network.channel.observer
        instr.attach(network)
        assert network.channel.observer is observer
        run_tracking(network, _updates(200, 3))
        instr.registry.collect()
        assert (
            _series_sum(instr.registry.get("repro_messages_total"))
            == network.stats.messages
        )

    def test_metrics_only_attach_leaves_channels_unhooked(self):
        # Traffic metrics are scrape-time derived; without a trace log the
        # channel hot path stays observer-free (the zero-overhead claim).
        network = DeterministicCounter(3, EPSILON).build_network()
        instr = NetworkInstrumentation()
        instr.attach(network)
        assert network.channel.observer is None
        assert network.coordinator.observer is not None

    def test_uninstrumented_network_has_no_observers(self):
        network = DeterministicCounter(3, EPSILON).build_network()
        assert network.channel.observer is None
        assert network.coordinator.observer is None


class TestRates:
    def test_channel_stats_rate(self):
        stats = ChannelStats(messages=100, bits=3200)
        rates = stats.rate(50.0)
        assert rates == {
            "elapsed": 50.0,
            "messages_per_unit": 2.0,
            "bits_per_unit": 64.0,
        }
        assert stats.rate(0.0) == {
            "elapsed": 0.0,
            "messages_per_unit": 0.0,
            "bits_per_unit": 0.0,
        }

    def test_summary_reports_rates_from_the_same_helper(self):
        updates = _updates(400, 4)
        network = DeterministicCounter(4, EPSILON).build_network()
        result = run_tracking(network, updates)
        rates = result.summary()["rates"]
        elapsed = float(result.records[-1].time)
        assert rates["elapsed"] == elapsed
        assert rates["messages_per_unit"] == pytest.approx(
            result.total_messages / elapsed
        )
        assert rates["bits_per_unit"] == pytest.approx(result.total_bits / elapsed)

    def test_async_summary_rates_use_drained_clock(self):
        updates = _updates(300, 4)
        network = build_async_network(
            DeterministicCounter(4, EPSILON), latency=UniformLatency(0.5, 2.0), seed=9
        )
        result = run_tracking_async(network, updates)
        rates = result.summary()["rates"]
        assert rates["elapsed"] == result.final_clock
        assert rates["elapsed"] >= float(result.records[-1].time)
