"""Equivalence of the batched and per-update tracking engines.

The batched streaming engine simulates the block protocol in closed form
(bulk count reports, charged superseded estimation reports, simulated block
closes), so these tests pin down its central contract: on the same
distributed stream, both engines must produce *identical* per-record
estimates, message counts and bit counts — for the deterministic and the
(seeded) randomized tracker, across stream classes, site counts, assignment
policies and recording strides.
"""

import pytest

from repro.baselines import NaiveCounter
from repro.core import DeterministicCounter, RandomizedCounter
from repro.exceptions import ProtocolError
from repro.monitoring import run_tracking
from repro.monitoring.messages import MessageKind
from repro.streams import (
    BlockedAssignment,
    RoundRobinAssignment,
    SkewedAssignment,
    assign_sites,
    nearly_monotone_stream,
    random_walk_stream,
    sawtooth_stream,
)

STREAMS = {
    "random_walk": lambda: random_walk_stream(4_000, seed=3),
    "sawtooth": lambda: sawtooth_stream(4_000, amplitude=40),
    "nearly_monotone": lambda: nearly_monotone_stream(4_000, seed=4),
}

CONFIGS = [
    # (num_sites, policy factory, record_every)
    (1, RoundRobinAssignment, 7),
    (4, lambda: BlockedAssignment(64), 50),
    (16, RoundRobinAssignment, 250),
    (4, lambda: SkewedAssignment(seed=1), 1),
]


def _fingerprint(result):
    """Everything observable about a run: records, totals, kind breakdown."""
    return (
        [
            (r.time, r.true_value, r.estimate, r.messages, r.bits)
            for r in result.records
        ],
        result.total_messages,
        result.total_bits,
        result.messages_by_kind,
    )


def _factories(num_sites):
    return [
        DeterministicCounter(num_sites, 0.1),
        RandomizedCounter(num_sites, 0.1, seed=9),
    ]


class TestEngineEquivalence:
    @pytest.mark.parametrize("stream_name", sorted(STREAMS))
    @pytest.mark.parametrize("config_index", range(len(CONFIGS)))
    def test_batched_engine_is_bit_for_bit_identical(self, stream_name, config_index):
        spec = STREAMS[stream_name]()
        num_sites, policy_factory, record_every = CONFIGS[config_index]
        updates = assign_sites(spec, num_sites, policy_factory())
        for factory in _factories(num_sites):
            per_update = factory.track(
                updates, record_every=record_every, batched=False
            )
            batched = factory.track(updates, record_every=record_every, batched=True)
            assert _fingerprint(per_update) == _fingerprint(batched)

    def test_auto_mode_matches_per_update(self):
        spec = random_walk_stream(2_000, seed=11)
        updates = assign_sites(spec, 4, BlockedAssignment(128))
        factory = DeterministicCounter(4, 0.1)
        auto = factory.track(updates, record_every=25)
        explicit = factory.track(updates, record_every=25, batched=False)
        assert _fingerprint(auto) == _fingerprint(explicit)

    def test_equivalence_on_baseline_sites_via_default_receive_batch(self):
        spec = random_walk_stream(1_000, seed=12)
        updates = assign_sites(spec, 3, BlockedAssignment(32))
        slow = NaiveCounter(3).track(updates, record_every=40, batched=False)
        fast = NaiveCounter(3).track(updates, record_every=40, batched=True)
        assert _fingerprint(slow) == _fingerprint(fast)


class TestDeliverBatch:
    def test_deliver_batch_matches_per_update_delivery(self):
        spec = random_walk_stream(600, seed=5)
        updates = assign_sites(spec, 1, SkewedAssignment(seed=2))
        reference = DeterministicCounter(1, 0.1).build_network()
        batched = DeterministicCounter(1, 0.1).build_network()
        for update in updates:
            reference.deliver_update(update.time, update.site, update.delta)
        batched.deliver_batch(
            0, [u.time for u in updates], [u.delta for u in updates]
        )
        assert reference.stats.messages == batched.stats.messages
        assert reference.stats.bits == batched.stats.bits
        assert reference.stats.by_kind == batched.stats.by_kind
        assert reference.estimate() == batched.estimate()

    def test_deliver_batch_rejects_unknown_site(self):
        network = DeterministicCounter(2, 0.1).build_network()
        with pytest.raises(ProtocolError):
            network.deliver_batch(5, [1], [1])

    def test_deliver_batch_rejects_length_mismatch(self):
        network = DeterministicCounter(2, 0.1).build_network()
        with pytest.raises(ProtocolError):
            network.deliver_batch(0, [1, 2], [1])

    def test_batch_with_logging_enabled_falls_back_and_stays_exact(self):
        spec = random_walk_stream(800, seed=6)
        updates = assign_sites(spec, 2, BlockedAssignment(100))
        logged = DeterministicCounter(2, 0.1).build_network()
        logged.channel.enable_log()
        plain = DeterministicCounter(2, 0.1).build_network()
        run_tracking(logged, updates, record_every=50, batched=True)
        run_tracking(plain, updates, record_every=50, batched=False)
        # With logging on, the fast path must fall back to real per-message
        # delivery: counters still match and the log mirrors every charge.
        assert logged.stats.messages == plain.stats.messages
        assert logged.stats.bits == plain.stats.bits
        assert len(logged.channel.log) == logged.stats.messages

    def test_charge_refused_while_logging(self):
        network = DeterministicCounter(2, 0.1).build_network()
        network.channel.enable_log()
        with pytest.raises(ProtocolError):
            network.channel.charge(MessageKind.REPORT, 1, 20)


class TestIteratorIngestion:
    """Regression: run_tracking must accept plain iterators (no len())."""

    def test_generator_input_with_record_every_gt_one(self):
        # The seed runner evaluated len(updates) for the final record, which
        # raised TypeError on generator input whenever record_every > 1.
        spec = random_walk_stream(103, seed=7)
        updates = assign_sites(spec, 2)
        factory = NaiveCounter(2)
        from_list = factory.track(list(updates), record_every=10, batched=False)
        from_generator = factory.track(
            (u for u in updates), record_every=10, batched=False
        )
        assert _fingerprint(from_list) == _fingerprint(from_generator)
        assert from_generator.records[-1].time == 103

    def test_generator_input_batched_engine(self):
        spec = random_walk_stream(500, seed=8)
        updates = assign_sites(spec, 4, BlockedAssignment(32))
        factory = DeterministicCounter(4, 0.1)
        eager = factory.track(updates, record_every=12, batched=True)
        lazy = factory.track((u for u in updates), record_every=12, batched=True)
        assert _fingerprint(eager) == _fingerprint(lazy)

    def test_final_step_always_recorded(self):
        spec = random_walk_stream(100, seed=9)
        updates = assign_sites(spec, 1)
        result = NaiveCounter(1).track(
            (u for u in updates), record_every=10, batched=True
        )
        assert result.length == 11  # every 10th step plus the final step
        assert result.records[-1].time == 100

    def test_empty_iterator(self):
        for batched in (False, True):
            network = NaiveCounter(1).build_network()
            result = run_tracking(network, iter(()), record_every=5, batched=batched)
            assert result.records == []
            assert result.total_messages == 0
