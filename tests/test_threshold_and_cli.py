"""Tests for thresholded monitoring and the command-line interface."""

import pytest

from repro.cli import STREAM_GENERATORS, build_parser, main
from repro.core import DeterministicCounter, ThresholdMonitor
from repro.exceptions import ConfigurationError
from repro.streams import assign_sites, biased_walk_stream, sawtooth_stream


class TestThresholdMonitor:
    def _run(self, spec, epsilon):
        monitor = ThresholdMonitor(epsilon)
        tracker = DeterministicCounter(4, monitor.tracker_epsilon())
        result = tracker.track(assign_sites(spec, 4), record_every=5)
        return monitor, result

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ThresholdMonitor(epsilon=0.0)
        monitor = ThresholdMonitor(epsilon=0.1)
        with pytest.raises(ConfigurationError):
            monitor.decide(10.0, threshold=0.0)
        with pytest.raises(ConfigurationError):
            monitor.sweep(None, [])

    def test_tracker_epsilon_is_one_third(self):
        assert ThresholdMonitor(0.3).tracker_epsilon() == pytest.approx(0.1)

    def test_no_violations_on_growing_stream(self):
        spec = biased_walk_stream(8_000, drift=0.6, seed=1)
        monitor, result = self._run(spec, epsilon=0.3)
        final = spec.final_value()
        thresholds = [final // 8, final // 4, final // 2, final]
        assert monitor.sweep(result, thresholds) == [0, 0, 0, 0]

    def test_no_violations_on_oscillating_stream(self):
        spec = sawtooth_stream(4_000, amplitude=200)
        monitor, result = self._run(spec, epsilon=0.3)
        assert monitor.violations(result, threshold=150) == 0

    def test_alerts_fire_once_per_crossing(self):
        spec = biased_walk_stream(6_000, drift=0.7, seed=2)
        monitor, result = self._run(spec, epsilon=0.2)
        alerts = monitor.alerts(result, threshold=spec.final_value() // 2)
        # A drifting stream crosses a mid-range threshold once and stays above.
        assert len(alerts) == 1
        assert alerts[0].fired is True

    def test_alerts_fire_and_clear_on_sawtooth(self):
        spec = sawtooth_stream(4_000, amplitude=100)
        monitor, result = self._run(spec, epsilon=0.2)
        alerts = monitor.alerts(result, threshold=80)
        fired = [a for a in alerts if a.fired]
        cleared = [a for a in alerts if not a.fired]
        assert len(fired) >= 2
        assert len(cleared) >= 1

    def test_decisions_cover_every_record(self):
        spec = biased_walk_stream(2_000, drift=0.5, seed=3)
        monitor, result = self._run(spec, epsilon=0.3)
        decisions = monitor.decisions(result, threshold=100)
        assert len(decisions) == len(result.records)


class TestCli:
    def test_parser_requires_subcommand(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_stream_choices_cover_generators(self):
        parser = build_parser()
        args = parser.parse_args(["variability", "--stream", "monotone", "--lengths", "100"])
        assert args.stream in STREAM_GENERATORS

    def test_variability_command_prints_table(self, capsys):
        exit_code = main(["variability", "--stream", "monotone", "--lengths", "100", "500"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "v(n)" in captured
        assert "500" in captured

    def test_tracking_command_prints_all_algorithms(self, capsys):
        exit_code = main(
            ["tracking", "--stream", "biased_walk", "--length", "3000", "--sites", "2",
             "--epsilon", "0.2", "--seed", "1"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        for name in ("naive", "cormode", "liu-style", "deterministic", "randomized"):
            assert name in captured

    def test_frequency_command_exact_and_sketched(self, capsys):
        assert main(["frequency", "--length", "1500", "--universe", "60", "--sites", "2"]) == 0
        exact_output = capsys.readouterr().out
        assert "exact" in exact_output
        assert (
            main(
                ["frequency", "--length", "1500", "--universe", "60", "--sites", "2", "--sketched"]
            )
            == 0
        )
        sketched_output = capsys.readouterr().out
        assert "count-min" in sketched_output

    def test_lowerbound_command_decodes(self, capsys):
        exit_code = main(
            ["lowerbound", "--n", "64", "--level", "6", "--flips", "4", "--samples", "2"]
        )
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "yes" in captured
        assert "members" in captured


class TestCliBatchEngine:
    def test_tracking_accepts_engine_flag(self, capsys):
        for engine in ("auto", "batched", "per-update"):
            assert (
                main(
                    [
                        "tracking",
                        "--stream",
                        "random_walk",
                        "--length",
                        "600",
                        "--engine",
                        engine,
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            assert "deterministic" in out

    def test_throughput_command_prints_speedup_table(self, capsys):
        assert (
            main(
                [
                    "throughput",
                    "--length",
                    "20000",
                    "--sites",
                    "4",
                    "--record-every",
                    "2000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "batched up/s" in out


class TestCliSharding:
    def test_tracking_accepts_shards_flag(self, capsys):
        assert (
            main(
                [
                    "tracking",
                    "--stream",
                    "biased_walk",
                    "--length",
                    "1500",
                    "--sites",
                    "4",
                    "--shards",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "shards=2" in out
        assert "deterministic" in out

    def test_throughput_accepts_shards_flag(self, capsys):
        assert (
            main(
                [
                    "throughput",
                    "--length",
                    "12000",
                    "--sites",
                    "4",
                    "--shards",
                    "2",
                    "--record-every",
                    "1500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "shards=2" in out
        assert "speedup" in out

    def test_latency_accepts_shards_flag(self, capsys):
        assert (
            main(
                [
                    "latency",
                    "--stream",
                    "biased_walk",
                    "--length",
                    "1200",
                    "--sites",
                    "4",
                    "--shards",
                    "2",
                    "--scales",
                    "0",
                    "2",
                    "--record-every",
                    "50",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "shards=2" in out
        assert "mean age" in out

    def test_block_length_help_names_blocked_assignment_not_sharding(self):
        parser = build_parser()
        args = parser.parse_args(["throughput", "--block-length", "64"])
        assert args.block_length == 64
        # The help text used to call blocked assignment "sharded ingestion",
        # conflating a stream-to-site layout with coordinator sharding.
        source = None
        for action_group in parser._subparsers._group_actions:
            source = action_group.choices["throughput"]
        help_text = next(
            action.help
            for action in source._actions
            if "--block-length" in action.option_strings
        )
        assert "blocked" in help_text
        assert "sharded-ingestion" not in help_text


class TestCliUnifiedEngine:
    """One --engine vocabulary across tracking, throughput and latency."""

    def _trace_file(self, tmp_path, suffix=".npz"):
        path = str(tmp_path / f"trace{suffix}")
        assert (
            main(
                ["trace", "--stream", "random_walk", "--length", "3000",
                 "--sites", "2", "--out", path]
            )
            == 0
        )
        return path

    def test_engine_choices_shared_across_subcommands(self):
        parser = build_parser()
        for command in ("tracking", "throughput", "latency"):
            args = parser.parse_args([command, "--engine", "batched"])
            assert args.engine == "batched"

    def test_tracking_arrays_engine_replays_trace(self, tmp_path, capsys):
        trace = self._trace_file(tmp_path)
        capsys.readouterr()
        assert (
            main(["tracking", "--engine", "arrays", "--trace", trace, "--mmap"]) == 0
        )
        out = capsys.readouterr().out
        assert "engine=arrays" in out
        assert "deterministic" in out

    def test_throughput_arrays_engine(self, tmp_path, capsys):
        trace = self._trace_file(tmp_path, suffix=".csv")
        capsys.readouterr()
        assert (
            main(
                ["throughput", "--engine", "arrays", "--trace", trace,
                 "--record-every", "500"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "arrays up/s" in out

    def test_latency_batched_engine(self, capsys):
        assert (
            main(
                ["latency", "--length", "1000", "--sites", "2", "--scales", "0",
                 "--record-every", "50", "--engine", "batched"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "engine=batched" in out

    def test_arrays_without_trace_is_a_clear_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["tracking", "--engine", "arrays"])
        assert "--trace" in capsys.readouterr().err

    def test_latency_rejects_arrays_engine(self, capsys):
        with pytest.raises(SystemExit):
            main(["latency", "--engine", "arrays"])
        assert "asynchronous" in capsys.readouterr().err

    def test_throughput_rejects_per_update_engine(self, capsys):
        with pytest.raises(SystemExit):
            main(["throughput", "--engine", "per-update"])
        assert "baseline" in capsys.readouterr().err

    def test_trace_without_arrays_engine_is_a_clear_error(self, tmp_path, capsys):
        trace = self._trace_file(tmp_path)
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["tracking", "--trace", trace])
        assert "--engine arrays" in capsys.readouterr().err

    def test_mmap_without_trace_is_a_clear_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["tracking", "--mmap"])
        assert "--trace" in capsys.readouterr().err


class TestCliRunSpec:
    """``repro run --config``: saved scenarios execute through the one API."""

    def _write_spec(self, tmp_path, **overrides):
        import json

        from repro.api import RunSpec, SourceSpec, TrackerSpec

        spec = RunSpec(
            source=SourceSpec(stream="random_walk", length=800, seed=1, sites=4),
            tracker=TrackerSpec(name="deterministic", epsilon=0.2),
            record_every=40,
        ).with_overrides(overrides)
        path = tmp_path / "spec.json"
        spec.save(path)
        return str(path), spec

    def test_run_executes_saved_spec_and_prints_summary_json(self, tmp_path, capsys):
        import json

        path, spec = self._write_spec(tmp_path)
        assert main(["run", "--config", path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"] == spec.to_dict()
        assert payload["result"]["total_messages"] > 0
        assert "violation_fraction" in payload["result"]
        assert "records" not in payload["result"]

    def test_run_set_overrides_fields_before_running(self, tmp_path, capsys):
        import json

        path, _ = self._write_spec(tmp_path)
        assert (
            main(
                [
                    "run",
                    "--config",
                    path,
                    "--set",
                    "source.length=200",
                    "--set",
                    "tracker.name=naive",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["source"]["length"] == 200
        assert payload["spec"]["tracker"]["name"] == "naive"
        # A naive tracker on n updates talks exactly n times.
        assert payload["result"]["total_messages"] == 200

    def test_run_records_flag_includes_per_step_records(self, tmp_path, capsys):
        import json

        path, _ = self._write_spec(tmp_path)
        assert main(["run", "--config", path, "--records"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["records"]
        assert payload["result"]["records"][0].keys() >= {"time", "estimate"}

    def test_run_async_spec_reports_staleness(self, tmp_path, capsys):
        import json

        path, _ = self._write_spec(
            tmp_path,
            **{
                "transport.mode": "async",
                "transport.latency": "uniform",
                "transport.scale": 3.0,
            },
        )
        assert main(["run", "--config", path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "staleness" in payload["result"]
        assert payload["result"]["staleness"]["delivered"] > 0

    def test_run_profile_dumps_stats_and_prints_summary(self, tmp_path, capsys):
        import json

        path, _ = self._write_spec(tmp_path)
        dump = tmp_path / "run.pstats"
        assert main(["run", "--config", path, "--profile", str(dump)]) == 0
        captured = capsys.readouterr()
        # stdout stays pure JSON; the top-N cumulative summary goes to
        # stderr alongside the binary dump.
        payload = json.loads(captured.out)
        assert payload["result"]["total_messages"] > 0
        assert "top 15 by cumulative" in captured.err
        assert "cumtime" in captured.err
        assert str(dump) in captured.err
        assert dump.exists() and dump.stat().st_size > 0

    def test_run_rejects_malformed_set(self, tmp_path):
        path, _ = self._write_spec(tmp_path)
        with pytest.raises(SystemExit, match="FIELD=VALUE"):
            main(["run", "--config", path, "--set", "source.length"])

    def test_run_rejects_unknown_spec_field(self, tmp_path):
        import json as _json

        path = tmp_path / "drifted.json"
        path.write_text(_json.dumps({"tracker": {"epsilonn": 0.1}}))
        with pytest.raises(ValueError, match="epsilonn"):
            main(["run", "--config", str(path)])

    def test_run_rejects_invalid_combination(self, tmp_path):
        from repro.exceptions import ProtocolError

        path, _ = self._write_spec(tmp_path)
        # A positive scale on the default sync/zero-latency transport is a
        # combination error either way: first against the zero-latency model,
        # and (with a model named) against the synchronous mode.
        with pytest.raises(ProtocolError, match=r"transport\.latency='zero'"):
            main(["run", "--config", path, "--set", "transport.scale=4.0"])
        with pytest.raises(ProtocolError, match=r"transport\.mode"):
            main(
                [
                    "run",
                    "--config",
                    path,
                    "--set",
                    "transport.scale=4.0",
                    "--set",
                    "transport.latency=uniform",
                ]
            )
