"""Tests for the Section 3.1 block partition (offline reference)."""

import pytest

from repro.core.blocks import Block, BlockPartitioner, block_level, block_trigger_threshold
from repro.exceptions import ConfigurationError
from repro.streams import biased_walk_stream, monotone_stream, random_walk_stream


class TestBlockLevel:
    def test_small_values_are_level_zero(self):
        assert block_level(0, num_sites=4) == 0
        assert block_level(15, num_sites=4) == 0
        assert block_level(-15, num_sites=4) == 0

    def test_level_one_starts_at_4k(self):
        # For k = 4: r = 0 while |f| < 16, r = 1 for 16 <= |f| < 32, etc.
        assert block_level(16, num_sites=4) == 1
        assert block_level(31, num_sites=4) == 1
        assert block_level(32, num_sites=4) == 2

    def test_level_satisfies_paper_inequality(self):
        for k in (1, 3, 8):
            for value in range(4 * k, 500):
                r = block_level(value, num_sites=k)
                assert (2 ** r) * 2 * k <= value < (2 ** r) * 4 * k

    def test_negative_values_use_magnitude(self):
        assert block_level(-100, num_sites=2) == block_level(100, num_sites=2)

    def test_rejects_bad_site_count(self):
        with pytest.raises(ConfigurationError):
            block_level(10, num_sites=0)


class TestBlockTriggerThreshold:
    def test_level_zero_is_k(self):
        assert block_trigger_threshold(0, num_sites=5) == 5

    def test_higher_levels_double(self):
        assert block_trigger_threshold(1, num_sites=3) == 3
        assert block_trigger_threshold(2, num_sites=3) == 6
        assert block_trigger_threshold(3, num_sites=3) == 12

    def test_rejects_negative_level(self):
        with pytest.raises(ConfigurationError):
            block_trigger_threshold(-1, num_sites=2)


class TestBlockPartitioner:
    def _partition(self, spec, k):
        partitioner = BlockPartitioner(num_sites=k)
        partitioner.update_many(spec.deltas)
        return partitioner.finish()

    def test_blocks_cover_stream_contiguously(self):
        spec = random_walk_stream(3_000, seed=1)
        blocks = self._partition(spec, 4)
        assert blocks[0].start_time == 1
        assert blocks[-1].end_time == 3_000
        for previous, current in zip(blocks, blocks[1:]):
            assert current.start_time == previous.end_time + 1

    def test_block_boundaries_record_exact_values(self):
        spec = random_walk_stream(2_000, seed=2)
        values = spec.values()
        blocks = self._partition(spec, 3)
        for block in blocks:
            assert block.end_value == values[block.end_time - 1]

    def test_complete_block_lengths_match_threshold(self):
        spec = biased_walk_stream(5_000, drift=0.6, seed=3)
        blocks = self._partition(spec, 4)
        for block in blocks:
            if block.complete:
                assert block.length == block_trigger_threshold(block.level, 4)
                assert block.length <= (2 ** block.level) * 4

    def test_variability_gain_at_least_one_tenth(self):
        for spec in (
            random_walk_stream(4_000, seed=4),
            biased_walk_stream(4_000, drift=0.5, seed=5),
            monotone_stream(4_000),
        ):
            for k in (1, 4):
                blocks = self._partition(spec, k)
                for block in blocks:
                    if block.complete:
                        assert block.variability_gain >= 0.1 - 1e-12

    def test_value_bounded_within_block(self):
        spec = biased_walk_stream(6_000, drift=0.7, seed=6)
        values = spec.values()
        k = 2
        blocks = self._partition(spec, k)
        for block in blocks:
            window = values[block.start_time - 1 : block.end_time]
            assert max(abs(v) for v in window) <= (2 ** block.level) * 5 * k
            if block.level >= 1:
                assert min(abs(v) for v in window) >= (2 ** block.level) * k

    def test_block_count_tracks_variability_not_length(self):
        # A monotone stream of the same length produces far fewer blocks than a
        # sawtooth-like random walk because its variability is logarithmic.
        monotone_blocks = self._partition(monotone_stream(8_000), 2)
        walk_blocks = self._partition(random_walk_stream(8_000, seed=7), 2)
        assert len(monotone_blocks) < len(walk_blocks) / 3

    def test_rejects_non_unit_updates(self):
        partitioner = BlockPartitioner(num_sites=1)
        with pytest.raises(ConfigurationError):
            partitioner.update(2)

    def test_cannot_update_after_finish(self):
        partitioner = BlockPartitioner(num_sites=1)
        partitioner.update(1)
        partitioner.finish()
        with pytest.raises(ConfigurationError):
            partitioner.update(1)

    def test_trailing_partial_block_flagged(self):
        partitioner = BlockPartitioner(num_sites=4)
        partitioner.update_many([1, 1])  # fewer than k = 4 updates
        blocks = partitioner.finish()
        assert len(blocks) == 1
        assert not blocks[0].complete

    def test_block_dataclass_length(self):
        block = Block(
            index=0,
            level=1,
            start_time=11,
            end_time=20,
            start_value=5,
            end_value=9,
            variability_gain=0.5,
            complete=True,
        )
        assert block.length == 10
