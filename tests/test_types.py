"""Tests for the shared value objects in repro.types."""

import pytest

from repro.types import EstimateRecord, ItemUpdate, Update, prefix_sums, values_from_updates


class TestUpdate:
    def test_valid_update(self):
        update = Update(time=1, site=0, delta=-1)
        assert update.time == 1
        assert update.site == 0
        assert update.delta == -1

    def test_rejects_non_positive_time(self):
        with pytest.raises(ValueError):
            Update(time=0, site=0, delta=1)

    def test_rejects_negative_site(self):
        with pytest.raises(ValueError):
            Update(time=1, site=-1, delta=1)

    def test_is_frozen(self):
        update = Update(time=1, site=0, delta=1)
        with pytest.raises(AttributeError):
            update.delta = 2


class TestItemUpdate:
    def test_valid_item_update(self):
        update = ItemUpdate(time=3, site=1, item=42, delta=-1)
        assert update.item == 42

    def test_rejects_non_unit_delta(self):
        with pytest.raises(ValueError):
            ItemUpdate(time=1, site=0, item=1, delta=2)

    def test_rejects_zero_delta(self):
        with pytest.raises(ValueError):
            ItemUpdate(time=1, site=0, item=1, delta=0)


class TestEstimateRecord:
    def test_absolute_error(self):
        record = EstimateRecord(time=1, true_value=10, estimate=11.0, messages=0, bits=0)
        assert record.absolute_error == pytest.approx(1.0)

    def test_within_relative_error_true(self):
        record = EstimateRecord(time=1, true_value=100, estimate=105.0, messages=0, bits=0)
        assert record.within_relative_error(0.05)

    def test_within_relative_error_false(self):
        record = EstimateRecord(time=1, true_value=100, estimate=106.0, messages=0, bits=0)
        assert not record.within_relative_error(0.05)

    def test_zero_value_requires_zero_estimate(self):
        good = EstimateRecord(time=1, true_value=0, estimate=0.0, messages=0, bits=0)
        bad = EstimateRecord(time=1, true_value=0, estimate=1.0, messages=0, bits=0)
        assert good.within_relative_error(0.1)
        assert not bad.within_relative_error(0.1)

    def test_negative_values_supported(self):
        record = EstimateRecord(time=1, true_value=-100, estimate=-104.0, messages=0, bits=0)
        assert record.within_relative_error(0.05)


class TestPrefixSums:
    def test_basic(self):
        assert list(prefix_sums([1, 1, -1])) == [1, 2, 1]

    def test_start_value(self):
        assert list(prefix_sums([1, -1], start=5)) == [6, 5]

    def test_empty(self):
        assert list(prefix_sums([])) == []

    def test_values_from_updates(self):
        updates = [Update(time=t, site=0, delta=d) for t, d in enumerate([2, -1, 3], start=1)]
        assert values_from_updates(updates) == [2, 1, 4]
