"""Tests for the tracing reduction (Appendix D) and the INDEX reduction (Lemma 4.3)."""

import pytest

from repro.baselines import LiuStyleCounter, NaiveCounter, StaticThresholdCounter
from repro.core import DeterministicCounter, RandomizedCounter
from repro.exceptions import QueryError
from repro.lowerbounds import DeterministicFlipFamily, IndexReduction, TranscriptTracer
from repro.streams import assign_sites, biased_walk_stream, random_walk_stream


def _values(updates):
    total, out = 0, []
    for update in updates:
        total += update.delta
        out.append(total)
    return out


class TestTranscriptTracer:
    def test_replay_matches_live_estimates_deterministic(self):
        spec = random_walk_stream(1_500, seed=1)
        updates = assign_sites(spec, 2)
        factory = DeterministicCounter(2, 0.1)
        live = factory.track(updates)
        tracer = TranscriptTracer(factory).build(updates)
        for record in live.records[::97]:
            assert tracer.query(record.time) == pytest.approx(record.estimate)

    def test_replay_matches_live_estimates_naive(self):
        spec = random_walk_stream(500, seed=2)
        updates = assign_sites(spec, 3)
        factory = NaiveCounter(3)
        live = factory.track(updates)
        tracer = TranscriptTracer(factory).build(updates)
        for record in live.records[::41]:
            assert tracer.query(record.time) == pytest.approx(record.estimate)

    def test_replay_matches_live_estimates_static_threshold(self):
        spec = random_walk_stream(800, seed=3)
        updates = assign_sites(spec, 2)
        factory = StaticThresholdCounter(2, threshold=5)
        live = factory.track(updates)
        tracer = TranscriptTracer(factory).build(updates)
        for record in live.records[::53]:
            assert tracer.query(record.time) == pytest.approx(record.estimate)

    def test_traced_estimates_satisfy_epsilon_guarantee(self):
        spec = biased_walk_stream(2_000, drift=0.4, seed=4)
        updates = assign_sites(spec, 2)
        tracer = TranscriptTracer(DeterministicCounter(2, 0.1)).build(updates)
        values = _values(updates)
        for time in range(50, 2_001, 111):
            estimate = tracer.query(time)
            true_value = values[time - 1]
            assert abs(estimate - true_value) <= 0.1 * abs(true_value) + 1e-9

    def test_summary_size_tracks_communication(self):
        spec = random_walk_stream(1_000, seed=5)
        updates = assign_sites(spec, 2)
        factory = DeterministicCounter(2, 0.1)
        live = factory.track(updates)
        tracer = TranscriptTracer(factory).build(updates)
        # Coordinator-bound messages are a subset of all messages.
        assert tracer.summary_messages() <= live.total_messages
        assert tracer.summary_bits() <= live.total_bits
        assert tracer.summary_bits() > 0

    def test_cheaper_tracker_means_smaller_summary(self):
        spec = biased_walk_stream(4_000, drift=0.7, seed=6)
        updates = assign_sites(spec, 2)
        cheap = TranscriptTracer(DeterministicCounter(2, 0.2)).build(updates)
        expensive = TranscriptTracer(NaiveCounter(2)).build(updates)
        assert cheap.summary_bits() < expensive.summary_bits()

    def test_query_validation(self):
        tracer = TranscriptTracer(NaiveCounter(1))
        with pytest.raises(QueryError):
            tracer.query(1)  # not built
        spec = random_walk_stream(10, seed=7)
        tracer.build(assign_sites(spec, 1))
        with pytest.raises(QueryError):
            tracer.query(0)
        with pytest.raises(QueryError):
            tracer.query(11)

    def test_trace_batch(self):
        spec = random_walk_stream(200, seed=8)
        updates = assign_sites(spec, 1)
        tracer = TranscriptTracer(DeterministicCounter(1, 0.1)).build(updates)
        values = tracer.trace([10, 100, 200])
        assert len(values) == 3


class TestIndexReduction:
    def _family(self):
        return DeterministicFlipFamily(n=48, level=10, num_flips=4)

    def test_exact_summary_always_decodes(self):
        family = self._family()

        class ExactSummary:
            def __init__(self, updates):
                self._values = _values(updates)

            def query(self, time):
                return self._values[time - 1]

            def summary_bits(self):
                return 64 * len(self._values)

        reduction = IndexReduction(family, ExactSummary)
        indices = family.sample_indices(8, seed=1)
        assert reduction.success_rate(indices) == 1.0

    def test_deterministic_tracker_summary_decodes(self):
        family = self._family()
        reduction = IndexReduction(
            family,
            lambda ups: TranscriptTracer(DeterministicCounter(1, family.epsilon / 2)).build(ups),
            num_sites=1,
        )
        indices = family.sample_indices(5, seed=2)
        reports = reduction.run_many(indices)
        assert all(report.correct for report in reports)
        for report in reports:
            assert report.max_relative_error <= family.epsilon
            assert report.summary_bits > 0

    def test_distributed_tracker_summary_decodes(self):
        family = self._family()
        reduction = IndexReduction(
            family,
            lambda ups: TranscriptTracer(DeterministicCounter(3, family.epsilon / 2)).build(ups),
            num_sites=3,
        )
        report = reduction.run(family.size() // 2)
        assert report.correct

    def test_randomized_tracker_summary_usually_decodes(self):
        family = self._family()
        reduction = IndexReduction(
            family,
            lambda ups: TranscriptTracer(
                RandomizedCounter(1, family.epsilon / 2, seed=3)
            ).build(ups),
            num_sites=1,
        )
        indices = family.sample_indices(4, seed=3)
        assert reduction.success_rate(indices) >= 0.5

    def test_report_records_information_content(self):
        family = self._family()

        class ExactSummary:
            def __init__(self, updates):
                self._values = _values(updates)

            def query(self, time):
                return self._values[time - 1]

        report = IndexReduction(family, ExactSummary).run(0)
        assert report.information_bits == pytest.approx(family.index_bits())
        assert report.encoded_index == 0
        assert report.decoded_index == 0
