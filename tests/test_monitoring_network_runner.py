"""Tests for network wiring, the simulation runner and the estimate history."""

import pytest

from repro.baselines import NaiveCounter
from repro.baselines.naive import NaiveCoordinator, NaiveSite
from repro.exceptions import ProtocolError, QueryError
from repro.monitoring import EstimateHistory, MonitoringNetwork, run_tracking
from repro.streams import assign_sites, random_walk_stream
from repro.types import Update


class TestMonitoringNetwork:
    def test_wires_sites_in_order(self):
        network = MonitoringNetwork(NaiveCoordinator(), [NaiveSite(1), NaiveSite(0)])
        assert [s.site_id for s in network.sites] == [0, 1]
        assert network.num_sites == 2

    def test_requires_contiguous_site_ids(self):
        with pytest.raises(ProtocolError):
            MonitoringNetwork(NaiveCoordinator(), [NaiveSite(0), NaiveSite(2)])

    def test_requires_at_least_one_site(self):
        with pytest.raises(ProtocolError):
            MonitoringNetwork(NaiveCoordinator(), [])

    def test_deliver_update_routes_to_site(self):
        network = MonitoringNetwork(NaiveCoordinator(), [NaiveSite(0), NaiveSite(1)])
        network.deliver_update(1, 1, 1)
        network.deliver_update(2, 0, -1)
        assert network.estimate() == pytest.approx(0.0)
        assert network.stats.messages == 2

    def test_deliver_update_rejects_unknown_site(self):
        network = MonitoringNetwork(NaiveCoordinator(), [NaiveSite(0)])
        with pytest.raises(ProtocolError):
            network.deliver_update(1, 3, 1)

    def test_unattached_site_cannot_send(self):
        site = NaiveSite(0)
        with pytest.raises(ProtocolError):
            site.receive_update(1, 1)


class TestRunTracking:
    def test_naive_tracker_is_exact(self):
        spec = random_walk_stream(500, seed=1)
        updates = assign_sites(spec, 2)
        result = NaiveCounter(num_sites=2).track(updates)
        assert result.length == 500
        assert result.max_relative_error() == 0.0
        assert result.total_messages == 500
        assert result.error_violations(0.01) == 0

    def test_record_every_subsamples(self):
        spec = random_walk_stream(100, seed=2)
        updates = assign_sites(spec, 1)
        result = NaiveCounter(num_sites=1).track(updates, record_every=10)
        assert result.length == 11  # every 10th step plus the final step
        assert result.records[-1].time == 100

    def test_records_track_true_value(self):
        updates = [Update(time=t, site=0, delta=1) for t in range(1, 6)]
        result = NaiveCounter(num_sites=1).track(updates)
        assert [r.true_value for r in result.records] == [1, 2, 3, 4, 5]
        assert [r.estimate for r in result.records] == [1, 2, 3, 4, 5]

    def test_rejects_bad_record_every(self):
        network = NaiveCounter(num_sites=1).build_network()
        with pytest.raises(ValueError):
            run_tracking(network, [], record_every=0)

    def test_violation_fraction_empty_run(self):
        network = NaiveCounter(num_sites=1).build_network()
        result = run_tracking(network, [])
        assert result.violation_fraction(0.1) == 0.0

    def test_messages_by_kind_reported(self):
        spec = random_walk_stream(50, seed=3)
        result = NaiveCounter(num_sites=1).track(assign_sites(spec, 1))
        assert result.messages_by_kind == {"report": 50}


class TestEstimateHistory:
    def test_query_returns_latest_at_or_before(self):
        history = EstimateHistory()
        history.record(1, 10.0)
        history.record(5, 20.0)
        history.record(9, 30.0)
        assert history.query(1) == 10.0
        assert history.query(4) == 10.0
        assert history.query(5) == 20.0
        assert history.query(100) == 30.0

    def test_query_before_first_record_raises(self):
        history = EstimateHistory()
        history.record(5, 1.0)
        with pytest.raises(QueryError):
            history.query(4)

    def test_empty_history_raises(self):
        with pytest.raises(QueryError):
            EstimateHistory().query(1)

    def test_times_must_increase(self):
        history = EstimateHistory()
        history.record(3, 1.0)
        with pytest.raises(QueryError):
            history.record(3, 2.0)

    def test_as_pairs_and_len(self):
        history = EstimateHistory()
        history.record(1, 1.0)
        history.record(2, 2.0)
        assert history.as_pairs() == [(1, 1.0), (2, 2.0)]
        assert len(history) == 2
