"""Property-based test (hypothesis) for the hierarchical-merge contract.

For any unit-delta stream, site count, assignment policy, shard count,
partition policy and delivery engine: every shard of the sharded hierarchy
must end bit-for-bit identical — estimate, message count, bit count,
per-kind breakdown — to a flat coordinator replaying that shard's substream,
and the root's merged estimate must equal the flat coordinator's estimate in
the degenerate single-shard case and the exact sum of the shard estimates in
general.  This is the invariant that makes the sharded topology a pure
*routing* refactor: the protocol maths happens in unmodified flat
coordinators, wherever they sit in the tree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeterministicCounter, RandomizedCounter
from repro.monitoring import (
    ContiguousSharding,
    StridedSharding,
    build_sharded_network,
    run_tracking,
)
from repro.streams.model import deltas_to_updates

unit_deltas = st.lists(st.sampled_from([-1, 1]), min_size=1, max_size=300)


def _assign(deltas, num_sites, policy_name):
    if policy_name == "round_robin":
        sites = [(t - 1) % num_sites for t in range(1, len(deltas) + 1)]
    elif policy_name == "blocked":
        sites = [((t - 1) // 16) % num_sites for t in range(1, len(deltas) + 1)]
    else:  # single hot site
        sites = [0] * len(deltas)
    return deltas_to_updates(deltas, sites)


@given(
    deltas=unit_deltas,
    num_sites=st.integers(min_value=1, max_value=8),
    num_shards=st.integers(min_value=1, max_value=8),
    policy_name=st.sampled_from(["round_robin", "blocked", "hot"]),
    strided=st.booleans(),
    batched=st.booleans(),
    randomized=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_hierarchical_merge_equals_flat_coordinators(
    deltas, num_sites, num_shards, policy_name, strided, batched, randomized
):
    num_shards = min(num_shards, num_sites)
    updates = _assign(deltas, num_sites, policy_name)
    factory = (
        RandomizedCounter(num_sites, 0.1, seed=7)
        if randomized
        else DeterministicCounter(num_sites, 0.1)
    )
    sharding = StridedSharding() if strided else ContiguousSharding()
    network = build_sharded_network(factory, num_shards, sharding=sharding)
    result = run_tracking(network, updates, record_every=13, batched=batched)

    for shard in network.shards:
        reference = factory.shard_factory(
            shard.num_sites, shard.shard_id
        ).build_network()
        local_of = {g: l for l, g in enumerate(shard.site_ids)}
        for update in updates:
            if update.site in local_of:
                reference.deliver_update(
                    update.time, local_of[update.site], update.delta
                )
        assert reference.estimate() == shard.estimate()
        assert reference.stats.messages == shard.stats.messages
        assert reference.stats.bits == shard.stats.bits
        assert reference.stats.by_kind == shard.stats.by_kind

    merged = sum(shard.estimate() for shard in network.shards)
    assert network.estimate() == merged
    if num_shards == 1:
        # Degenerate hierarchy: the root view *is* the flat coordinator.
        flat = factory.shard_factory(num_sites, 0).build_network()
        for update in updates:
            flat.deliver_update(update.time, update.site, update.delta)
        assert network.estimate() == flat.estimate()
        assert result.total_messages == flat.stats.messages
