"""Tests for the analysis utilities: bounds, fitting, metrics, reporting, experiments."""

import math

import numpy as np
import pytest

from repro.analysis import (
    compare_trackers,
    deterministic_message_bound,
    fit_growth,
    format_table,
    monotone_variability_bound,
    nearly_monotone_variability_bound,
    random_walk_variability_bound,
    randomized_message_bound,
    repeat_variability,
    run_tracker_on_stream,
    single_site_message_bound,
    summarize_trials,
)
from repro.analysis.bounds import (
    biased_walk_variability_bound,
    block_partition_message_bound,
    deterministic_tracing_space_bound,
    liu_fair_coin_message_bound,
    monotone_message_bound_cormode,
    monotone_message_bound_huang,
    randomized_tracing_space_bound,
)
from repro.baselines import NaiveCounter
from repro.core import DeterministicCounter
from repro.exceptions import ConfigurationError
from repro.streams import monotone_stream, random_walk_stream


class TestBounds:
    def test_monotone_bound_is_logarithmic(self):
        assert monotone_variability_bound(1_000) == pytest.approx(1 + math.log(1_000))

    def test_nearly_monotone_bound_grows_with_beta(self):
        assert nearly_monotone_variability_bound(2.0, 1_000) > nearly_monotone_variability_bound(
            1.0, 1_000
        )

    def test_random_walk_bound_shape(self):
        assert random_walk_variability_bound(10_000) == pytest.approx(100 * math.log(10_000))

    def test_biased_walk_bound_decreases_with_drift(self):
        assert biased_walk_variability_bound(1_000, 0.5) < biased_walk_variability_bound(
            1_000, 0.1
        )

    def test_message_bounds_monotone_in_parameters(self):
        assert deterministic_message_bound(4, 0.1, 100) > deterministic_message_bound(4, 0.1, 10)
        assert deterministic_message_bound(4, 0.05, 100) > deterministic_message_bound(4, 0.1, 100)
        assert randomized_message_bound(16, 0.1, 100) > randomized_message_bound(4, 0.1, 100)

    def test_randomized_cheaper_than_deterministic_for_many_sites(self):
        assert randomized_message_bound(100, 0.01, 50) < deterministic_message_bound(100, 0.01, 50)

    def test_block_partition_bound(self):
        assert block_partition_message_bound(4, 10) == pytest.approx(25 * 4 * 10 + 12)

    def test_baseline_bounds_positive(self):
        assert monotone_message_bound_cormode(4, 0.1, 1_000) > 0
        assert monotone_message_bound_huang(4, 0.1, 1_000) > 0
        assert liu_fair_coin_message_bound(4, 0.1, 1_000) > 0

    def test_single_site_bound(self):
        assert single_site_message_bound(0.1, 50) == pytest.approx(1.1 / 0.1 * 50)

    def test_tracing_bounds(self):
        assert deterministic_tracing_space_bound(0.1, 10, 1_000) == pytest.approx(
            10 / 0.1 * math.log2(1_000)
        )
        assert randomized_tracing_space_bound(0.1, 10) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            monotone_variability_bound(0)
        with pytest.raises(ConfigurationError):
            deterministic_message_bound(0, 0.1, 10)


class TestFitGrowth:
    def test_recovers_sqrt_shape(self):
        xs = [100, 400, 1_600, 6_400, 25_600]
        ys = [3.0 * math.sqrt(x) for x in xs]
        fit = fit_growth(xs, ys)
        assert fit.best_shape == "sqrt"
        assert fit.best_constant == pytest.approx(3.0, rel=1e-6)

    def test_recovers_log_shape(self):
        xs = [10, 100, 1_000, 10_000, 100_000]
        ys = [7.0 * math.log(x) for x in xs]
        fit = fit_growth(xs, ys)
        assert fit.best_shape == "log"

    def test_recovers_linear_shape_with_noise(self):
        rng = np.random.default_rng(1)
        xs = list(range(100, 2_100, 100))
        ys = [2.0 * x * (1 + rng.normal(0, 0.02)) for x in xs]
        fit = fit_growth(xs, ys)
        assert fit.best_shape in ("linear", "linear_log")
        assert fit.shape_is_consistent("linear", tolerance=0.1)

    def test_shape_is_consistent_rejects_wrong_shape(self):
        xs = [100, 400, 1_600, 6_400, 25_600]
        ys = [3.0 * x for x in xs]
        fit = fit_growth(xs, ys)
        assert not fit.shape_is_consistent("log", tolerance=0.25)

    def test_residual_of_unknown_shape_raises(self):
        fit = fit_growth([1, 2, 3], [1, 2, 3])
        with pytest.raises(ConfigurationError):
            fit.residual_of("cubic")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_growth([1, 2], [1, 2])
        with pytest.raises(ConfigurationError):
            fit_growth([1, 2, 3], [1, 2])
        with pytest.raises(ConfigurationError):
            fit_growth([0, 1, 2], [1, 2, 3])
        with pytest.raises(ConfigurationError):
            fit_growth([1, 2, 3], [1, 2, 3], shapes=["nope"])


class TestMetrics:
    def test_summary_statistics(self):
        summary = summarize_trials([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)

    def test_as_row_length(self):
        assert len(summarize_trials([1.0, 2.0]).as_row()) == 7

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            summarize_trials([])


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 123.456]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "123.456" in lines[3]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_float_rendering(self):
        table = format_table(["x"], [[0.0000001], [2.5], [3_000_000.0]])
        assert "1.000e-07" in table
        assert "2.5" in table
        assert "3.000e+06" in table


class TestExperiments:
    def test_run_tracker_on_stream(self):
        spec = random_walk_stream(500, seed=1)
        result = run_tracker_on_stream(NaiveCounter(2), spec, num_sites=2)
        assert result.total_messages == 500

    def test_compare_trackers(self):
        spec = monotone_stream(2_000)
        comparisons = compare_trackers(
            {"naive": NaiveCounter(2), "deterministic": DeterministicCounter(2, 0.1)},
            spec,
            num_sites=2,
            epsilon=0.1,
        )
        assert [c.name for c in comparisons] == ["naive", "deterministic"]
        naive, deterministic = comparisons
        assert naive.messages == 2_000
        assert deterministic.messages < naive.messages
        assert deterministic.max_relative_error <= 0.1 + 1e-12
        assert naive.variability == pytest.approx(deterministic.variability)

    def test_compare_trackers_requires_factories(self):
        with pytest.raises(ConfigurationError):
            compare_trackers({}, monotone_stream(10), num_sites=1, epsilon=0.1)

    def test_repeat_variability(self):
        stats = repeat_variability(
            lambda seed: random_walk_stream(1_000, seed=seed), trials=5, seed=3
        )
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["std"] >= 0.0

    def test_repeat_variability_validation(self):
        with pytest.raises(ConfigurationError):
            repeat_variability(lambda seed: monotone_stream(10), trials=0)
