"""Tests for the heavy-hitters query API on the frequency coordinator."""

import collections

import pytest

from repro.core.frequencies import FrequencyTracker, HashReducer
from repro.exceptions import ConfigurationError
from repro.streams import ItemStreamConfig, zipfian_item_stream


def _run_tracker(tracker, updates):
    network = tracker.build_network()
    for update in updates:
        network.sites[update.site].receive_item_update(update.time, update.item, update.delta)
    return network.coordinator


def _truth(updates):
    counts = collections.Counter()
    for update in updates:
        counts[update.item] += update.delta
    return counts


class TestHeavyHitters:
    def _workload(self, seed=1):
        config = ItemStreamConfig(length=4_000, universe_size=100, num_sites=3, seed=seed)
        return zipfian_item_stream(config, exponent=1.4, deletion_probability=0.15)

    def test_contains_all_true_heavy_hitters(self):
        updates = self._workload()
        epsilon = 0.05
        coordinator = _run_tracker(FrequencyTracker(3, epsilon), updates)
        truth = _truth(updates)
        f1 = sum(truth.values())
        fraction = 0.1
        reported = {item for item, _ in coordinator.heavy_hitters(fraction)}
        for item, count in truth.items():
            if count >= (fraction + epsilon) * f1:
                assert item in reported

    def test_excludes_clearly_light_items(self):
        updates = self._workload(seed=2)
        epsilon = 0.05
        coordinator = _run_tracker(FrequencyTracker(3, epsilon), updates)
        truth = _truth(updates)
        f1 = sum(truth.values())
        fraction = 0.1
        reported = {item for item, _ in coordinator.heavy_hitters(fraction)}
        for item in reported:
            assert truth.get(item, 0) >= (fraction - 2 * epsilon) * f1

    def test_sorted_by_decreasing_estimate(self):
        updates = self._workload(seed=3)
        coordinator = _run_tracker(FrequencyTracker(3, 0.1), updates)
        hitters = coordinator.heavy_hitters(0.02)
        estimates = [estimate for _, estimate in hitters]
        assert estimates == sorted(estimates, reverse=True)

    def test_requires_candidates_for_sketched_reduction(self):
        updates = self._workload(seed=4)
        reducer = HashReducer.from_epsilon(0.2, seed=5)
        coordinator = _run_tracker(FrequencyTracker(3, 0.2, reducer=reducer), updates)
        with pytest.raises(ConfigurationError):
            coordinator.heavy_hitters(0.1)
        # With an explicit candidate list the sketched coordinator works too.
        truth = _truth(updates)
        hitters = coordinator.heavy_hitters(0.1, candidates=truth.keys())
        f1 = sum(truth.values())
        for item, count in truth.items():
            if count >= 0.35 * f1:
                assert item in {i for i, _ in hitters}

    def test_fraction_validation(self):
        updates = self._workload(seed=6)
        coordinator = _run_tracker(FrequencyTracker(3, 0.2), updates)
        with pytest.raises(ConfigurationError):
            coordinator.heavy_hitters(0.0)
        with pytest.raises(ConfigurationError):
            coordinator.heavy_hitters(1.5)

    def test_estimated_f1_close_to_truth(self):
        updates = self._workload(seed=7)
        coordinator = _run_tracker(FrequencyTracker(3, 0.1), updates)
        truth_f1 = sum(_truth(updates).values())
        # F1 is exact at block boundaries; between boundaries it lags by at
        # most one block's worth of updates.
        assert coordinator.estimated_f1() == pytest.approx(truth_f1, rel=0.25)
