"""Tests for the single-site tracker (Appendix I) and update expansion (Appendix C)."""

import pytest

from repro.analysis.bounds import single_site_message_bound
from repro.core import (
    SingleSiteTracker,
    expand_stream,
    expand_update,
    run_single_site,
    variability,
)
from repro.core.expansion import expansion_variability_overhead, harmonic_number
from repro.exceptions import ConfigurationError, StreamError
from repro.streams import monotone_stream, random_walk_stream, sawtooth_stream
from repro.streams.model import StreamSpec


class TestSingleSiteTracker:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            SingleSiteTracker(epsilon=0.0)

    def test_error_guarantee_random_walk(self):
        spec = random_walk_stream(5_000, seed=1)
        result = run_single_site(spec.deltas, epsilon=0.1)
        assert result.max_relative_error() <= 0.1 + 1e-12

    def test_error_guarantee_arbitrary_deltas(self):
        # Unlike the distributed trackers, arbitrary integer deltas are allowed.
        deltas = [10, -3, 25, -40, 7, 7, -1, 100, -50, 3]
        result = run_single_site(deltas, epsilon=0.2)
        assert result.max_relative_error() <= 0.2 + 1e-12

    def test_message_bound_appendix_i(self):
        for spec in (
            random_walk_stream(5_000, seed=2),
            monotone_stream(5_000),
            sawtooth_stream(5_000, amplitude=25),
        ):
            epsilon = 0.1
            result = run_single_site(spec.deltas, epsilon)
            bound = single_site_message_bound(epsilon, result.variability)
            # +1 covers the very first message out of an empty coordinator.
            assert result.messages <= bound + 1

    def test_monotone_messages_logarithmic(self):
        result = run_single_site(monotone_stream(50_000).deltas, epsilon=0.1)
        # v = H(50000) ~ 11.4, so about 11 / 0.1 messages at the very most.
        assert result.messages < 150

    def test_message_sent_only_when_violated(self):
        tracker = SingleSiteTracker(epsilon=0.5)
        assert tracker.update(10) is True  # 0 vs 10 violates
        assert tracker.update(1) is False  # 10 vs 11 is within 50%
        assert tracker.update(20) is True

    def test_variability_reported(self):
        spec = random_walk_stream(1_000, seed=3)
        result = run_single_site(spec.deltas, epsilon=0.1)
        assert result.variability == pytest.approx(variability(spec.deltas))

    def test_estimate_tracks_value_exactly_after_send(self):
        tracker = SingleSiteTracker(epsilon=0.1)
        tracker.update(100)
        assert tracker.estimate == tracker.value == 100


class TestExpandUpdate:
    def test_positive(self):
        assert expand_update(4) == [1, 1, 1, 1]

    def test_negative(self):
        assert expand_update(-3) == [-1, -1, -1]

    def test_unit_and_zero(self):
        assert expand_update(1) == [1]
        assert expand_update(-1) == [-1]
        assert expand_update(0) == []


class TestExpandStream:
    def test_total_preserved(self):
        spec = StreamSpec(name="jumps", deltas=(5, -2, 0, 7, -10, 3))
        expanded = expand_stream(spec)
        assert expanded.final_value() == spec.final_value()
        assert expanded.is_unit_stream()
        assert expanded.length == sum(abs(d) for d in spec.deltas)

    def test_rejects_all_zero_stream(self):
        with pytest.raises(StreamError):
            expand_stream(StreamSpec(name="zeros", deltas=(0, 0)))

    def test_expansion_of_unit_stream_is_identity(self):
        spec = random_walk_stream(200, seed=5)
        assert expand_stream(spec).deltas == spec.deltas

    def test_name_and_params_annotated(self):
        expanded = expand_stream(StreamSpec(name="jumps", deltas=(3,)))
        assert expanded.name.endswith("_expanded")
        assert expanded.params["expanded"] is True


class TestExpansionOverheadBound:
    def test_harmonic_number(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == 1.0
        assert harmonic_number(4) == pytest.approx(1.0 + 0.5 + 1.0 / 3 + 0.25)
        # Approximation branch agrees with the exact sum.
        exact = sum(1.0 / i for i in range(1, 201))
        assert harmonic_number(200) == pytest.approx(exact, rel=1e-9)

    def test_bound_dominates_actual_expansion_variability_positive(self):
        value_before, delta = 10, 40
        actual = variability(expand_update(delta), start=value_before)
        assert actual <= expansion_variability_overhead(value_before, delta) + 1e-9

    def test_bound_dominates_actual_expansion_variability_negative(self):
        value_before, delta = 100, -60
        actual = variability(expand_update(delta), start=value_before)
        assert actual <= expansion_variability_overhead(value_before, delta) + 1e-9

    def test_bound_dominates_for_many_cases(self):
        cases = [(5, 17), (50, 9), (3, 200), (200, -150), (40, -20), (10, -9)]
        for value_before, delta in cases:
            actual = variability(expand_update(delta), start=value_before)
            bound = expansion_variability_overhead(value_before, delta)
            assert actual <= bound + 1e-9, (value_before, delta)

    def test_bound_never_exceeds_trivial_cap(self):
        # Each unit step adds at most 1 to the variability.
        assert expansion_variability_overhead(1, 1000) <= 1000.0
        assert expansion_variability_overhead(2000, -1000) <= 1000.0

    def test_unit_updates_cost_at_most_one(self):
        assert expansion_variability_overhead(7, 1) == 1.0
        assert expansion_variability_overhead(7, 0) == 0.0
