"""Tests for the Greenwald–Khanna quantile summary substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, QueryError
from repro.sketches import GKQuantileSummary


def _rank_error(values, answer, rank):
    """Rank error of `answer` against the true rank in the sorted values."""
    sorted_values = sorted(values)
    low = np.searchsorted(sorted_values, answer, side="left") + 1
    high = np.searchsorted(sorted_values, answer, side="right")
    if low <= rank <= high:
        return 0
    return min(abs(rank - low), abs(rank - high))


class TestGKQuantileSummary:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            GKQuantileSummary(epsilon=0.0)

    def test_empty_query_raises(self):
        summary = GKQuantileSummary(epsilon=0.1)
        with pytest.raises(QueryError):
            summary.query_quantile(0.5)

    def test_rank_validation(self):
        summary = GKQuantileSummary(epsilon=0.1)
        summary.insert(1.0)
        with pytest.raises(QueryError):
            summary.query_rank(0)
        with pytest.raises(QueryError):
            summary.query_rank(2)
        with pytest.raises(QueryError):
            summary.query_quantile(1.5)

    def test_exact_on_tiny_input(self):
        summary = GKQuantileSummary(epsilon=0.1)
        summary.insert_many([5.0, 1.0, 3.0])
        assert summary.query_rank(1) == 1.0
        assert summary.query_rank(3) == 5.0

    @pytest.mark.parametrize("epsilon", [0.01, 0.05, 0.1])
    def test_rank_error_uniform_random(self, epsilon):
        rng = np.random.default_rng(1)
        values = rng.random(5_000).tolist()
        summary = GKQuantileSummary(epsilon=epsilon)
        summary.insert_many(values)
        n = len(values)
        for phi in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            rank = max(1, int(np.ceil(phi * n)))
            answer = summary.query_rank(rank)
            assert _rank_error(values, answer, rank) <= epsilon * n

    def test_rank_error_sorted_and_reversed_input(self):
        epsilon = 0.05
        for values in (list(range(3_000)), list(range(3_000, 0, -1))):
            summary = GKQuantileSummary(epsilon=epsilon)
            summary.insert_many([float(v) for v in values])
            n = len(values)
            for phi in (0.1, 0.5, 0.9):
                rank = max(1, int(np.ceil(phi * n)))
                answer = summary.query_rank(rank)
                assert _rank_error(values, answer, rank) <= epsilon * n

    def test_space_far_below_stream_length(self):
        rng = np.random.default_rng(2)
        summary = GKQuantileSummary(epsilon=0.05)
        summary.insert_many(rng.random(20_000).tolist())
        assert summary.size() < 2_000
        assert summary.count == 20_000

    def test_space_grows_with_precision(self):
        rng = np.random.default_rng(3)
        values = rng.random(10_000).tolist()
        loose = GKQuantileSummary(epsilon=0.1)
        tight = GKQuantileSummary(epsilon=0.01)
        loose.insert_many(values)
        tight.insert_many(values)
        assert tight.size() > loose.size()

    def test_quantiles_list_is_sorted(self):
        rng = np.random.default_rng(4)
        summary = GKQuantileSummary(epsilon=0.05)
        summary.insert_many(rng.random(2_000).tolist())
        quantiles = summary.quantiles(9)
        assert quantiles == sorted(quantiles)
        with pytest.raises(ConfigurationError):
            summary.quantiles(0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_property_rank_error_bounded(self, values):
        epsilon = 0.1
        summary = GKQuantileSummary(epsilon=epsilon)
        summary.insert_many(values)
        n = len(values)
        for phi in (0.25, 0.5, 0.75):
            rank = max(1, int(np.ceil(phi * n)))
            answer = summary.query_rank(rank)
            assert _rank_error(values, answer, rank) <= max(1, epsilon * n)
