"""Tests for the sketch substrates: hashing, Count-Min and CR-precis."""

import collections

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sketches import CountMinSketch, CRPrecis, PairwiseHash, PairwiseHashFamily, first_primes
from repro.sketches.cr_precis import primes_at_least


class TestPairwiseHash:
    def test_deterministic(self):
        family = PairwiseHashFamily(range_size=32, seed=1)
        h = family.draw()
        assert h(12345) == h(12345)

    def test_range(self):
        h = PairwiseHashFamily(range_size=10, seed=2).draw()
        assert all(0 <= h(x) < 10 for x in range(1_000))

    def test_roughly_uniform(self):
        h = PairwiseHashFamily(range_size=8, seed=3).draw()
        counts = collections.Counter(h(x) for x in range(8_000))
        assert min(counts.values()) > 700
        assert max(counts.values()) < 1_300

    def test_distinct_draws_differ(self):
        family = PairwiseHashFamily(range_size=1_000, seed=4)
        first, second = family.draw(), family.draw()
        assert any(first(x) != second(x) for x in range(100))

    def test_rejects_negative_items(self):
        h = PairwiseHashFamily(range_size=4, seed=5).draw()
        with pytest.raises(ConfigurationError):
            h(-1)

    def test_invalid_coefficients(self):
        with pytest.raises(ConfigurationError):
            PairwiseHash(a=0, b=0, range_size=4)
        with pytest.raises(ConfigurationError):
            PairwiseHash(a=1, b=0, range_size=0)

    def test_family_draw_many(self):
        family = PairwiseHashFamily(range_size=16, seed=6)
        assert len(family.draw_many(5)) == 5
        with pytest.raises(ConfigurationError):
            family.draw_many(0)


class TestCountMinSketch:
    def test_never_underestimates_insert_only(self):
        sketch = CountMinSketch(width=64, depth=4, seed=1)
        rng = np.random.default_rng(2)
        truth = collections.Counter()
        for item in rng.integers(0, 500, size=5_000):
            sketch.update(int(item))
            truth[int(item)] += 1
        for item, count in truth.items():
            assert sketch.estimate(item) >= count

    def test_error_bounded_by_epsilon_f1(self):
        epsilon = 0.05
        sketch = CountMinSketch.from_error(epsilon, failure_probability=0.01, seed=3)
        rng = np.random.default_rng(4)
        truth = collections.Counter()
        for item in rng.zipf(1.3, size=8_000) % 1_000:
            sketch.update(int(item))
            truth[int(item)] += 1
        f1 = sum(truth.values())
        overestimates = [sketch.estimate(item) - count for item, count in truth.items()]
        assert np.mean([o <= epsilon * f1 for o in overestimates]) > 0.95

    def test_from_error_sizing(self):
        sketch = CountMinSketch.from_error(0.01, failure_probability=1.0 / 16.0)
        assert sketch.width == 200
        assert sketch.depth == 4

    def test_supports_deletions_via_median(self):
        sketch = CountMinSketch(width=128, depth=5, seed=5)
        for _ in range(50):
            sketch.update(7, +1)
        for _ in range(20):
            sketch.update(7, -1)
        assert sketch.estimate_median(7) >= 30  # collisions only add
        assert sketch.total == 30

    def test_merge_is_linear(self):
        first = CountMinSketch(width=32, depth=3, seed=6)
        second = CountMinSketch(width=32, depth=3, seed=6)
        for item in range(100):
            first.update(item)
        for item in range(50, 150):
            second.update(item)
        merged = first.merge(second)
        combined = CountMinSketch(width=32, depth=3, seed=6)
        for item in list(range(100)) + list(range(50, 150)):
            combined.update(item)
        assert np.array_equal(merged.counters(), combined.counters())

    def test_merge_requires_matching_shape(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(8, 2, seed=1).merge(CountMinSketch(8, 2, seed=2))

    def test_size_in_counters(self):
        assert CountMinSketch(width=10, depth=3, seed=0).size_in_counters() == 30

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=0, depth=1)
        with pytest.raises(ConfigurationError):
            CountMinSketch.from_error(epsilon=0.0)


class TestPrimes:
    def test_first_primes(self):
        assert first_primes(6) == [2, 3, 5, 7, 11, 13]

    def test_primes_at_least(self):
        assert primes_at_least(3, 10) == [11, 13, 17]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            first_primes(0)


class TestCRPrecis:
    def test_never_underestimates_insert_only(self):
        sketch = CRPrecis(primes=primes_at_least(4, 50))
        rng = np.random.default_rng(7)
        truth = collections.Counter()
        for item in rng.integers(0, 400, size=4_000):
            sketch.update(int(item))
            truth[int(item)] += 1
        for item, count in truth.items():
            assert sketch.estimate(item) >= count

    def test_from_epsilon_deterministic_error(self):
        epsilon = 0.25
        universe = 512
        sketch = CRPrecis.from_epsilon(epsilon, universe_size=universe)
        rng = np.random.default_rng(8)
        truth = collections.Counter()
        for item in rng.integers(0, universe, size=3_000):
            sketch.update(int(item))
            truth[int(item)] += 1
        f1 = sum(truth.values())
        for item, count in truth.items():
            assert sketch.estimate(item) - count <= epsilon * f1

    def test_average_estimate_is_linear_under_deletions(self):
        sketch = CRPrecis(primes=[101, 103, 107])
        for _ in range(40):
            sketch.update(11, +1)
        for _ in range(15):
            sketch.update(11, -1)
        assert sketch.estimate_average(11) >= 25.0
        assert sketch.total == 25

    def test_merge(self):
        first = CRPrecis(primes=[11, 13])
        second = CRPrecis(primes=[11, 13])
        first.update(3, 5)
        second.update(3, 2)
        merged = first.merge(second)
        assert merged.estimate(3) == 7
        with pytest.raises(ConfigurationError):
            first.merge(CRPrecis(primes=[11, 17]))

    def test_distinct_primes_required(self):
        with pytest.raises(ConfigurationError):
            CRPrecis(primes=[7, 7])
        with pytest.raises(ConfigurationError):
            CRPrecis(primes=[9])

    def test_size_in_counters(self):
        assert CRPrecis(primes=[5, 7]).size_in_counters() == 12
