"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.streams import (
    assign_sites,
    monotone_stream,
    nearly_monotone_stream,
    random_walk_stream,
    sawtooth_stream,
)


@pytest.fixture(scope="session")
def small_random_walk():
    """A 4,000-step fair random walk used by many tracker tests."""
    return random_walk_stream(4_000, seed=11)


@pytest.fixture(scope="session")
def small_monotone():
    """A 4,000-step monotone stream."""
    return monotone_stream(4_000)


@pytest.fixture(scope="session")
def small_nearly_monotone():
    """A 4,000-step nearly monotone stream."""
    return nearly_monotone_stream(4_000, deletion_fraction=0.2, seed=5)


@pytest.fixture(scope="session")
def small_sawtooth():
    """A 4,000-step sawtooth between 0 and 50 (high variability)."""
    return sawtooth_stream(4_000, amplitude=50)


@pytest.fixture(scope="session")
def stream_collection(small_random_walk, small_monotone, small_nearly_monotone, small_sawtooth):
    """All four stream fixtures keyed by name."""
    return {
        "random_walk": small_random_walk,
        "monotone": small_monotone,
        "nearly_monotone": small_nearly_monotone,
        "sawtooth": small_sawtooth,
    }


def distribute(spec, num_sites):
    """Helper used across tests: round-robin distribution of a stream."""
    return assign_sites(spec, num_sites)
