"""Tests for the hard-instance families of Section 4 (Theorem 4.1 and Lemma 4.4)."""

import math

import pytest

from repro.core.variability import variability
from repro.exceptions import ConfigurationError
from repro.lowerbounds import (
    DeterministicFlipFamily,
    OverlapChain,
    RandomizedFlipFamily,
    flip_family_variability,
    flip_sequence_values,
    overlap_count,
    sequences_match,
)
from repro.lowerbounds.deterministic_family import flip_sequence_deltas
from repro.lowerbounds.overlap import overlap_fraction


class TestOverlap:
    def test_overlap_count_identical(self):
        assert overlap_count([10, 10, 13], [10, 10, 13], epsilon=0.1) == 3

    def test_overlap_count_m_vs_m_plus_3_never_overlaps(self):
        # With eps = 1/m there is no value within eps*m of m and eps*(m+3) of m+3.
        m = 10
        assert overlap_count([m] * 5, [m + 3] * 5, epsilon=1.0 / m) == 0

    def test_match_threshold(self):
        first = [10] * 10
        second = [10] * 6 + [13] * 4
        assert sequences_match(first, second, epsilon=0.1)
        third = [10] * 5 + [13] * 5
        assert not sequences_match(first, third, epsilon=0.1)

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            overlap_count([1], [1, 2], epsilon=0.1)


class TestFlipSequences:
    def test_values_flip_at_given_times(self):
        values = flip_sequence_values(6, level=4, flip_times=[2, 5])
        assert values == [4, 7, 7, 7, 4, 4]

    def test_deltas_consistent_with_values(self):
        deltas = flip_sequence_deltas(6, level=4, flip_times=[2, 5])
        running = 4
        rebuilt = []
        for delta in deltas:
            running += delta
            rebuilt.append(running)
        assert rebuilt == flip_sequence_values(6, level=4, flip_times=[2, 5])

    def test_variability_formula(self):
        # r/2 flips up (3/(m+3) each) and r/2 flips down (3/m each).
        m, r = 10, 6
        expected = (r / 2) * (3.0 / (m + 3)) + (r / 2) * (3.0 / m)
        assert flip_family_variability(m, r) == pytest.approx(expected)
        # And it matches the closed form (6m+9)/(2m+6) * eps * r.
        assert flip_family_variability(m, r) == pytest.approx(
            (6 * m + 9) / (2 * m + 6) * (1.0 / m) * r
        )

    def test_variability_formula_matches_actual_stream(self):
        m, n = 8, 40
        flips = [5, 11, 23, 31]
        deltas = flip_sequence_deltas(n, m, flips)
        assert variability(deltas, start=m) == pytest.approx(flip_family_variability(m, len(flips)))


class TestDeterministicFlipFamily:
    def test_family_size_is_binomial(self):
        family = DeterministicFlipFamily(n=20, level=5, num_flips=4)
        assert family.size() == math.comb(20, 4)

    def test_rank_unrank_roundtrip(self):
        family = DeterministicFlipFamily(n=15, level=4, num_flips=4)
        for index in range(0, family.size(), 37):
            assert family.index_of(family.flip_times(index)) == index

    def test_flip_times_are_sorted_and_distinct(self):
        family = DeterministicFlipFamily(n=30, level=6, num_flips=6)
        times = family.flip_times(1234)
        assert list(times) == sorted(set(times))
        assert len(times) == 6

    def test_lexicographic_order(self):
        family = DeterministicFlipFamily(n=6, level=3, num_flips=2)
        assert family.flip_times(0) == (1, 2)
        assert family.flip_times(1) == (1, 3)
        assert family.flip_times(family.size() - 1) == (5, 6)

    def test_distinct_members_have_distinct_values(self):
        family = DeterministicFlipFamily(n=10, level=4, num_flips=2)
        seen = set()
        for index in range(family.size()):
            key = tuple(family.member_values(index))
            assert key not in seen
            seen.add(key)

    def test_no_two_members_confusable_at_epsilon(self):
        # Any eps-accurate tracer distinguishes m from m+3, hence any two members.
        family = DeterministicFlipFamily(n=8, level=5, num_flips=2)
        eps = family.epsilon
        members = [family.member_values(i) for i in range(family.size())]
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                differs = any(
                    abs(a - b) > eps * max(a, b) for a, b in zip(members[i], members[j])
                )
                assert differs

    def test_member_variability_matches_formula(self):
        family = DeterministicFlipFamily(n=40, level=10, num_flips=6)
        deltas = family.member_deltas(777)
        assert variability(deltas, start=family.level) == pytest.approx(
            family.member_variability()
        )

    def test_decode_exact_values(self):
        family = DeterministicFlipFamily(n=25, level=7, num_flips=4)
        index = 1000 % family.size()
        assert family.decode(family.member_values(index)) == index

    def test_decode_tolerates_epsilon_noise(self):
        family = DeterministicFlipFamily(n=25, level=7, num_flips=4)
        index = 4321 % family.size()
        values = family.member_values(index)
        noisy = [v * (1 + (family.epsilon * 0.9) * (-1) ** t) for t, v in enumerate(values)]
        assert family.decode(noisy) == index

    def test_index_bits_at_least_paper_bound(self):
        family = DeterministicFlipFamily(n=128, level=10, num_flips=8)
        assert family.index_bits() >= family.paper_bit_lower_bound()

    def test_sample_indices_distinct_and_in_range(self):
        family = DeterministicFlipFamily(n=64, level=10, num_flips=4)
        indices = family.sample_indices(20, seed=1)
        assert len(set(indices)) == 20
        assert all(0 <= i < family.size() for i in indices)

    def test_enumerate_members_limit(self):
        family = DeterministicFlipFamily(n=10, level=3, num_flips=2)
        members = list(family.enumerate_members(limit=5))
        assert len(members) == 5
        assert members[0] == (1, 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DeterministicFlipFamily(n=10, level=1, num_flips=2)
        with pytest.raises(ConfigurationError):
            DeterministicFlipFamily(n=10, level=5, num_flips=3)  # odd
        with pytest.raises(ConfigurationError):
            DeterministicFlipFamily(n=4, level=5, num_flips=6)  # r > n


class TestOverlapChain:
    def test_probabilities(self):
        chain = OverlapChain(flip_probability=0.1)
        assert chain.switch_probability == pytest.approx(2 * 0.1 * 0.9)
        assert chain.stay_probability == pytest.approx(1 - 0.18)

    def test_transition_matrix_rows_sum_to_one(self):
        matrix = OverlapChain(0.2).transition_matrix()
        assert matrix.sum(axis=1) == pytest.approx([1.0, 1.0])

    def test_stationary_uniform(self):
        chain = OverlapChain(0.3)
        assert chain.stationary_distribution() == pytest.approx([0.5, 0.5])
        assert chain.expected_overlap_fraction() == 0.5

    def test_mixing_time_bound_dominates_exact(self):
        for p in (0.01, 0.05, 0.2, 0.4):
            chain = OverlapChain(p)
            assert chain.mixing_time_bound() >= chain.exact_mixing_time()

    def test_simulated_overlap_concentrates_near_half(self):
        chain = OverlapChain(0.05)
        fractions = chain.simulate_overlap_fractions(steps=2_000, trials=20, seed=3)
        assert 0.35 < sum(fractions) / len(fractions) < 0.65
        assert max(fractions) < 0.8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OverlapChain(0.0)
        with pytest.raises(ConfigurationError):
            OverlapChain(1.0)


class TestRandomizedFlipFamily:
    def _family(self):
        return RandomizedFlipFamily(n=2_000, epsilon=0.25, variability_budget=300.0)

    def test_flip_probability_formula(self):
        family = self._family()
        assert family.flip_probability == pytest.approx(300.0 / (6 * 0.25 * 2_000))

    def test_members_use_two_levels(self):
        family = self._family()
        member = family.sample_member(seed=1)
        assert set(member) <= {family.level, family.level + 3}
        assert len(member) == 2_000

    def test_sampled_family_satisfies_lemma_properties(self):
        family = self._family()
        members = family.sample_family(12, seed=7)
        report = family.check_family(members)
        assert report.matching_pairs == 0
        assert report.max_overlap_fraction < 0.6
        assert report.over_budget_members == 0
        assert report.max_variability <= family.variability_budget

    def test_pairwise_overlap_concentrates_near_half(self):
        family = self._family()
        mean_fraction, max_fraction = family.overlap_statistics(pairs=30, seed=9)
        assert 0.4 < mean_fraction < 0.6
        assert max_fraction < 0.75

    def test_member_variability_consistent_with_global_function(self):
        family = self._family()
        member = family.sample_member(seed=11)
        deltas = [member[0] - member[0]] + [b - a for a, b in zip(member, member[1:])]
        # Recompute with the library's variability on deltas relative to f(0)=member[0].
        assert family.member_variability(member) == pytest.approx(
            variability(deltas, start=member[0])
        )

    def test_paper_family_size_is_astronomical_for_small_eps(self):
        family = RandomizedFlipFamily(n=10**6, epsilon=0.01, variability_budget=5_000)
        assert family.paper_family_size() > 1.0  # finite but already non-trivial

    def test_expected_flips(self):
        family = self._family()
        assert family.expected_flips() == pytest.approx(300.0 / (6 * 0.25))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomizedFlipFamily(n=10, epsilon=0.25, variability_budget=1_000.0)  # p >= 1
        with pytest.raises(ConfigurationError):
            RandomizedFlipFamily(n=100, epsilon=0.9, variability_budget=1.0)  # eps too big
        with pytest.raises(ConfigurationError):
            RandomizedFlipFamily(n=100, epsilon=0.2, variability_budget=0.0)
