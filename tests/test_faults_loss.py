"""Unit tests for the seeded per-link loss models.

The loss layer is the probabilistic ground floor of the fault subsystem, so
it gets statistical scrutiny: the i.i.d. model's empirical drop rate must
match its nominal rate, the Gilbert–Elliott chain must hit its stationary
drop rate while exhibiting the configured burstiness (mean bad-spell length),
and per-link state must be independent — one link's bad spell must not leak
into another's.  Configuration validation is exact: rates live in ``[0, 1)``
so retransmission terminates almost surely, and burst parameters must keep
the good→bad flip probability a probability.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.faults import NO_LOSS, GilbertElliottLoss, IIDLoss, NoLoss


class TestNoLoss:
    def test_never_drops_and_is_lossless(self):
        rng = np.random.default_rng(0)
        assert NO_LOSS.lossless
        assert not any(NO_LOSS.roll(rng, ("up", 0)) for _ in range(100))

    def test_shared_instance_is_a_noloss(self):
        assert isinstance(NO_LOSS, NoLoss)


class TestIIDLoss:
    def test_empirical_rate_matches_nominal(self):
        model = IIDLoss(0.3)
        rng = np.random.default_rng(42)
        n = 20_000
        drops = sum(model.roll(rng, ("up", 0)) for _ in range(n))
        assert drops / n == pytest.approx(0.3, abs=0.02)

    def test_not_lossless(self):
        assert not IIDLoss(0.01).lossless

    def test_zero_rate_never_drops(self):
        model = IIDLoss(0.0)
        rng = np.random.default_rng(1)
        assert model.lossless
        assert not any(model.roll(rng, ("down", 3)) for _ in range(200))

    @pytest.mark.parametrize("rate", [-0.1, 1.0, 1.5])
    def test_rejects_rates_outside_unit_interval(self, rate):
        with pytest.raises(ConfigurationError):
            IIDLoss(rate)


class TestGilbertElliott:
    def test_stationary_rate_matches_nominal(self):
        model = GilbertElliottLoss(0.2, burst_length=4.0)
        rng = np.random.default_rng(7)
        n = 60_000
        drops = sum(model.roll(rng, ("up", 0)) for _ in range(n))
        assert drops / n == pytest.approx(0.2, abs=0.02)

    def test_mean_bad_spell_length_matches_burst_length(self):
        model = GilbertElliottLoss(0.2, burst_length=6.0)
        rng = np.random.default_rng(9)
        rolls = [model.roll(rng, ("up", 0)) for _ in range(80_000)]
        spells = []
        run = 0
        for dropped in rolls:
            if dropped:
                run += 1
            elif run:
                spells.append(run)
                run = 0
        assert np.mean(spells) == pytest.approx(6.0, rel=0.1)

    def test_links_have_independent_state(self):
        # Pin one link in a (near-permanent) bad spell; a fresh link must
        # still start in the good state and deliver.  burst_length=1e6 makes
        # both flip probabilities ~1e-6, so 50 rolls change nothing w.h.p.
        model = GilbertElliottLoss(0.5, burst_length=1e6)
        rng = np.random.default_rng(3)
        hot, cold = ("up", 0), ("up", 1)
        model._bad[hot] = True
        assert all(model.roll(rng, hot) for _ in range(50))
        assert not any(model.roll(rng, cold) for _ in range(50))

    def test_rejects_infeasible_burst(self):
        # rate/(1-rate) > burst_length makes P(good->bad) > 1.
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss(0.6, burst_length=1.0)

    def test_rejects_burst_below_one(self):
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss(0.1, burst_length=0.5)

    @pytest.mark.parametrize("rate", [-0.01, 1.0])
    def test_rejects_rates_outside_unit_interval(self, rate):
        with pytest.raises(ConfigurationError):
            GilbertElliottLoss(rate)

    def test_zero_rate_is_lossless(self):
        model = GilbertElliottLoss(0.0)
        rng = np.random.default_rng(5)
        assert model.lossless
        assert not any(model.roll(rng, ("up", 0)) for _ in range(100))
