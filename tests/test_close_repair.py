"""The sequence-numbered block-close repair: correctness and effectiveness.

The naive block protocol zeroes a site's ``block_value_change`` when the
close's BROADCAST arrives — silently discarding any drift delivered in the
reply-to-broadcast gap, which under a delayed or lossy transport biases the
coordinator's boundary value further with every close.  The repair
sequence-numbers closes so a site subtracts *exactly what it replied* and
the gap drift rides the next REPLY into the boundary.

Three claims under test.  First, plumbing: :func:`enable_close_repair` flags
every block-tracking actor across flat/sharded/tree topologies and refuses
baseline networks with nothing to repair.  Second, conservatism: under the
synchronous (instant-delivery) transport the gap is empty, so a repaired run
produces *identical* estimates and message counts — only the close sequence
numbers' bits are added.  Third, effectiveness — the reason the subsystem
exists: under loss the naive protocol's violation fraction degrades
measurably while the repaired protocol stays within noise of its lossless
baseline.
"""

import pytest

from repro.asynchrony import UniformLatency, build_async_network, run_tracking_async
from repro.baselines import NaiveCounter
from repro.core import DeterministicCounter
from repro.exceptions import ConfigurationError
from repro.faults import FaultPlan, enable_close_repair
from repro.monitoring import build_sharded_network, build_tree_network, run_tracking
from repro.streams import (
    RoundRobinAssignment,
    assign_sites,
    oscillating_stream,
    random_walk_stream,
)

EPSILON = 0.1
NUM_SITES = 8


def _updates(spec, k=NUM_SITES):
    return list(assign_sites(spec, k, RoundRobinAssignment()))


class TestEnableCloseRepair:
    def test_flags_flat_network(self):
        network = DeterministicCounter(NUM_SITES, EPSILON).build_network()
        flagged = enable_close_repair(network)
        assert flagged == NUM_SITES + 1  # sites plus coordinator
        assert network.coordinator.repair_closes
        assert all(site.repair_closes for site in network.sites)

    def test_flags_sharded_leaves_only(self):
        network = build_sharded_network(DeterministicCounter(6, EPSILON), 3)
        flagged = enable_close_repair(network)
        # Three leaf networks of (2 sites + 1 coordinator) each; the root
        # aggregator exchanges no close protocol and stays naive.
        assert flagged == 3 * (2 + 1)

    def test_flags_tree_recursively(self):
        network = build_tree_network(
            DeterministicCounter(8, EPSILON), levels=3, fanout=2
        )
        assert enable_close_repair(network) > 0

    def test_rejects_networks_with_nothing_to_repair(self):
        network = NaiveCounter(4, EPSILON).build_network()
        with pytest.raises(ConfigurationError):
            enable_close_repair(network)


class TestSynchronousConservatism:
    def test_sync_estimates_and_messages_unchanged_bits_grow(self):
        # Instant delivery leaves no reply-to-broadcast gap, so the repair
        # must be a pure no-op on the protocol's decisions: identical
        # estimates and message schedule, with only the "close" payload
        # integers adding bits.
        updates = _updates(random_walk_stream(4_000, seed=6))

        naive_net = DeterministicCounter(NUM_SITES, EPSILON).build_network()
        naive = run_tracking(naive_net, updates, record_every=9)

        repaired_net = DeterministicCounter(NUM_SITES, EPSILON).build_network()
        enable_close_repair(repaired_net)
        repaired = run_tracking(repaired_net, updates, record_every=9)

        assert [
            (r.time, r.estimate, r.messages) for r in repaired.records
        ] == [(r.time, r.estimate, r.messages) for r in naive.records]
        assert repaired.total_messages == naive.total_messages
        assert repaired.total_bits > naive.total_bits


class TestLossyEffectiveness:
    def _run(self, loss, repair):
        network = build_async_network(
            DeterministicCounter(NUM_SITES, EPSILON),
            latency=UniformLatency(0.1, 1.0),
            seed=3,
            faults=FaultPlan(loss=loss, seed=5) if loss else None,
        )
        if repair:
            enable_close_repair(network)
        updates = _updates(oscillating_stream(12_000, target=400, seed=11))
        result = run_tracking_async(network, updates, record_every=20)
        return result.summary(EPSILON)["violation_fraction"]

    def test_repair_holds_accuracy_where_naive_degrades(self):
        naive_lossless = self._run(0.0, repair=False)
        naive_lossy = self._run(0.2, repair=False)
        repaired_lossless = self._run(0.0, repair=True)
        repaired_lossy = self._run(0.2, repair=True)
        # The naive protocol degrades measurably at 20% loss...
        assert naive_lossy > naive_lossless + 0.2
        # ...while the repaired protocol stays within noise of lossless.
        assert repaired_lossy <= repaired_lossless + 0.05
        assert repaired_lossy < 0.1

    def test_repair_is_inert_without_loss(self):
        # Small latency, no loss: both protocols track fine; the repair
        # changes nothing observable about accuracy.
        assert self._run(0.0, repair=True) <= self._run(0.0, repair=False) + 0.02


class TestRepairOnHierarchies:
    @pytest.mark.parametrize("topology", ["shards", "tree"])
    def test_repaired_hierarchy_runs_clean_under_loss(self, topology):
        from repro.asynchrony import (
            build_sharded_async_network,
            build_tree_async_network,
        )

        if topology == "shards":
            network = build_sharded_async_network(
                DeterministicCounter(6, EPSILON),
                3,
                latency=UniformLatency(0.1, 1.0),
                seed=2,
                faults=FaultPlan(loss=0.1, seed=4),
            )
        else:
            network = build_tree_async_network(
                DeterministicCounter(8, EPSILON),
                levels=3,
                fanout=2,
                latency=UniformLatency(0.1, 1.0),
                seed=2,
                faults=FaultPlan(loss=0.1, seed=4),
            )
        enable_close_repair(network)
        k = 6 if topology == "shards" else 8
        updates = _updates(random_walk_stream(3_000, seed=8), k=k)
        result = run_tracking_async(network, updates, record_every=25)
        assert result.retransmitted == result.dropped + result.duplicates
        assert result.final_estimate == pytest.approx(
            result.final_true_value, abs=max(40.0, 0.3 * abs(result.final_true_value))
        )
