"""The sharded hierarchy's contracts: flat equivalence, accounting, topology.

Central claims pinned here:

* ``shards=1`` is *bit-for-bit* the flat engine — estimates, message counts,
  bit counts, per-kind breakdown and transcript order — across the
  per-update, batched and (zero-latency) asynchronous engines;
* with multiple shards, every shard behaves bit-for-bit like a flat
  coordinator over its own substream, and the root's estimate is the exact
  sum of the shard estimates (the hierarchical-merge contract; the
  hypothesis version lives in ``tests/test_sharding_property.py``);
* communication stays separately accounted per shard, the root channel
  carries only estimate pushes and level re-sends, and the root re-sends
  global level changes to stale shards via the counted multicast.
"""

import pytest

from repro.asynchrony import (
    ConstantLatency,
    UniformLatency,
    build_sharded_async_network,
    run_tracking_async,
)
from repro.baselines import CormodeCounter, HuangCounter, NaiveCounter
from repro.core import DeterministicCounter, RandomizedCounter
from repro.core.blocks import block_level
from repro.exceptions import ConfigurationError, ProtocolError
from repro.monitoring import (
    ChannelStats,
    ContiguousSharding,
    MessageKind,
    RootAggregator,
    ShardedNetwork,
    StridedSharding,
    build_sharded_network,
    run_tracking,
)
from repro.streams import (
    BlockedAssignment,
    RoundRobinAssignment,
    SkewedAssignment,
    assign_sites,
    monotone_stream,
    random_walk_stream,
    sawtooth_stream,
)


def _fingerprint(result):
    """Everything observable about a run: records, totals, kind breakdown."""
    return (
        [
            (r.time, r.true_value, r.estimate, r.messages, r.bits)
            for r in result.records
        ],
        result.total_messages,
        result.total_bits,
        result.messages_by_kind,
    )


def _transcript(channel):
    """A channel's charged transcript, one entry per transmission."""
    return [
        (m.kind, m.sender, m.receiver, dict(m.payload), m.time) for m in channel.log
    ]


class TestShardingPolicies:
    def test_contiguous_balanced_within_one(self):
        groups = ContiguousSharding().partition(10, 3)
        assert [list(group) for group in groups] == [
            [0, 1, 2, 3],
            [4, 5, 6],
            [7, 8, 9],
        ]

    def test_strided_interleaves(self):
        groups = StridedSharding().partition(7, 3)
        assert groups == [[0, 3, 6], [1, 4], [2, 5]]

    @pytest.mark.parametrize("policy", [ContiguousSharding(), StridedSharding()])
    def test_partition_is_a_partition(self, policy):
        for num_sites, num_shards in [(1, 1), (5, 5), (9, 4), (16, 3)]:
            groups = policy.partition(num_sites, num_shards)
            assert len(groups) == num_shards
            flat = [site for group in groups for site in group]
            assert sorted(flat) == list(range(num_sites))
            assert all(group for group in groups)

    def test_rejects_more_shards_than_sites(self):
        with pytest.raises(ConfigurationError):
            ContiguousSharding().partition(3, 4)
        with pytest.raises(ConfigurationError):
            StridedSharding().partition(3, 0)


class TestFlatEquivalence:
    """shards=1 must be bit-for-bit the flat engine, on every engine."""

    @pytest.mark.parametrize(
        "factory_builder",
        [
            lambda: DeterministicCounter(4, 0.1),
            lambda: RandomizedCounter(4, 0.1, seed=9),
            lambda: CormodeCounter(4, 0.1),
            lambda: NaiveCounter(4),
        ],
        ids=["deterministic", "randomized", "cormode", "naive"],
    )
    @pytest.mark.parametrize("batched", [False, True], ids=["per-update", "batched"])
    def test_sync_engines_bit_for_bit(self, factory_builder, batched):
        monotone = isinstance(factory_builder(), CormodeCounter)
        spec = (
            monotone_stream(2_000) if monotone else random_walk_stream(2_000, seed=3)
        )
        updates = assign_sites(spec, 4, BlockedAssignment(64))
        flat_net = factory_builder().build_network()
        flat_net.channel.enable_log()
        flat = run_tracking(flat_net, updates, record_every=21, batched=batched)
        sharded_net = build_sharded_network(factory_builder(), 1)
        sharded_net.channel.enable_log()
        sharded = run_tracking(
            sharded_net, updates, record_every=21, batched=batched
        )
        assert _fingerprint(flat) == _fingerprint(sharded)
        assert _transcript(flat_net.channel) == _transcript(
            sharded_net.shards[0].network.channel
        )

    def test_async_zero_latency_bit_for_bit(self):
        spec = sawtooth_stream(1_500, amplitude=30)
        updates = assign_sites(spec, 4)
        flat = run_tracking(
            DeterministicCounter(4, 0.1).build_network(),
            updates,
            record_every=9,
            batched=False,
        )
        network = build_sharded_async_network(
            DeterministicCounter(4, 0.1), 1, latency=ConstantLatency(0.0)
        )
        asynchronous = run_tracking_async(network, updates, record_every=9)
        assert _fingerprint(flat) == _fingerprint(asynchronous)
        assert asynchronous.staleness.inflight_highwater == 0

    def test_async_jittered_latency_bit_for_bit(self):
        """shards=1 must match the flat async engine even when the latency
        RNG is consulted — the single shard's channel draws the same seed."""
        from repro.asynchrony import build_async_network

        spec = random_walk_stream(800, seed=29)
        updates = assign_sites(spec, 4)
        flat = run_tracking_async(
            build_async_network(
                DeterministicCounter(4, 0.1), latency=UniformLatency(1.0, 5.0), seed=0
            ),
            updates,
            record_every=7,
        )
        sharded = run_tracking_async(
            build_sharded_async_network(
                DeterministicCounter(4, 0.1), 1, latency=UniformLatency(1.0, 5.0), seed=0
            ),
            updates,
            record_every=7,
        )
        assert _fingerprint(flat) == _fingerprint(sharded)
        assert flat.staleness == sharded.staleness

    def test_single_shard_pays_no_root_hop(self):
        network = build_sharded_network(DeterministicCounter(4, 0.1), 1)
        assert network.root is None
        assert network.root_stats.messages == 0
        run_tracking(
            network, assign_sites(random_walk_stream(500, seed=5), 4), record_every=10
        )
        assert network.root_stats.messages == 0
        assert network.stats.messages == network.local_stats.messages


class TestHierarchicalMerge:
    """Shards behave like flat coordinators over their substreams; root sums."""

    @pytest.mark.parametrize("num_shards", [2, 3, 4])
    @pytest.mark.parametrize(
        "sharding", [ContiguousSharding(), StridedSharding()], ids=["contig", "strided"]
    )
    def test_per_shard_flat_equivalence(self, num_shards, sharding):
        spec = random_walk_stream(3_000, seed=7)
        updates = assign_sites(spec, 8, RoundRobinAssignment())
        factory = DeterministicCounter(8, 0.1)
        network = build_sharded_network(factory, num_shards, sharding=sharding)
        run_tracking(network, updates, record_every=25, batched=False)
        for shard in network.shards:
            reference = factory.shard_factory(
                shard.num_sites, shard.shard_id
            ).build_network()
            for update in updates:
                if update.site in shard.site_ids:
                    reference.deliver_update(
                        update.time,
                        shard.site_ids.index(update.site),
                        update.delta,
                    )
            assert reference.estimate() == shard.estimate()
            assert reference.stats.messages == shard.stats.messages
            assert reference.stats.bits == shard.stats.bits
            assert reference.stats.by_kind == shard.stats.by_kind
        assert network.estimate() == pytest.approx(
            sum(shard.estimate() for shard in network.shards)
        )

    def test_batched_engine_matches_per_update_observably(self):
        spec = random_walk_stream(4_000, seed=11)
        updates = assign_sites(spec, 8, BlockedAssignment(128))
        nets = {}
        results = {}
        for batched in (False, True):
            nets[batched] = build_sharded_network(DeterministicCounter(8, 0.1), 4)
            results[batched] = run_tracking(
                nets[batched], updates, record_every=50, batched=batched
            )
        # Estimates at every record point and shard-local accounting are
        # engine-invariant; only the root-push count may differ (push
        # granularity follows delivery granularity).
        assert [r.estimate for r in results[False].records] == [
            r.estimate for r in results[True].records
        ]
        assert nets[False].local_stats.messages == nets[True].local_stats.messages
        assert nets[False].local_stats.bits == nets[True].local_stats.bits
        assert nets[False].estimate() == nets[True].estimate()

    def test_root_level_tracks_merged_magnitude(self):
        network = build_sharded_network(NaiveCounter(4), 2)
        updates = assign_sites(monotone_stream(600), 4)
        run_tracking(network, updates, record_every=60)
        root = network.root
        assert root.estimate() == 600.0
        assert root.level == block_level(600, 4)
        for shard in network.shards:
            assert shard.root_level == root.level

    def test_root_channel_carries_only_reports_and_level_resends(self):
        network = build_sharded_network(DeterministicCounter(6, 0.1), 3)
        updates = assign_sites(random_walk_stream(2_000, seed=13), 6)
        run_tracking(network, updates, record_every=40)
        kinds = set(network.root_stats.by_kind)
        assert kinds <= {MessageKind.REPORT.value, MessageKind.BROADCAST.value}
        assert network.root_stats.by_kind[MessageKind.REPORT.value] == sum(
            network.root.reports_by_shard.values()
        )
        assert sum(shard.pushes for shard in network.shards) == network.root.reports

    def test_total_stats_decompose_into_local_plus_root(self):
        network = build_sharded_network(DeterministicCounter(6, 0.1), 3)
        updates = assign_sites(random_walk_stream(1_500, seed=17), 6)
        result = run_tracking(network, updates, record_every=30)
        combined = network.local_stats + network.root_stats
        assert result.total_messages == combined.messages
        assert result.total_bits == combined.bits
        assert network.stats.by_kind == combined.by_kind
        # Per-shard counters are genuinely per shard: they sum to the local
        # total and ChannelStats.merge reproduces it.
        assert ChannelStats.merge(network.shard_stats()).messages == (
            network.local_stats.messages
        )


class TestAsyncSharded:
    def test_zero_latency_matches_sync_sharded(self):
        spec = random_walk_stream(2_500, seed=19)
        updates = assign_sites(spec, 8)
        sync_net = build_sharded_network(DeterministicCounter(8, 0.1), 4)
        sync = run_tracking(sync_net, updates, record_every=13, batched=False)
        async_net = build_sharded_async_network(
            DeterministicCounter(8, 0.1), 4, latency=ConstantLatency(0.0)
        )
        asynchronous = run_tracking_async(async_net, updates, record_every=13)
        assert _fingerprint(sync) == _fingerprint(asynchronous)
        assert asynchronous.staleness.inflight_highwater == 0
        assert asynchronous.final_estimate == sync_net.estimate()

    def test_second_leg_delays_the_root_view(self):
        """With latency only on the root leg, shards are exact but the root lags."""
        spec = monotone_stream(800)
        updates = assign_sites(spec, 4)
        network = build_sharded_async_network(
            NaiveCounter(4),
            2,
            latency=ConstantLatency(0.0),
            root_latency=ConstantLatency(50.0),
            seed=0,
        )
        result = run_tracking_async(network, updates, record_every=1, drain=False)
        # Shard estimates are exact (local legs are instant)...
        assert sum(shard.estimate() for shard in network.shards) == 800.0
        # ...but the root's merged view is behind while pushes are in flight.
        assert network.estimate() < 800.0
        assert network.channel.in_flight > 0
        # Draining the hierarchy settles the root on the exact merge.
        network.drain()
        assert network.estimate() == 800.0
        assert result.total_messages == network.stats.messages

    def test_staleness_signals_aggregate_both_levels(self):
        spec = random_walk_stream(1_200, seed=23)
        updates = assign_sites(spec, 6)
        network = build_sharded_async_network(
            DeterministicCounter(6, 0.1),
            3,
            latency=UniformLatency(1.0, 4.0),
            seed=2,
        )
        result = run_tracking_async(network, updates, record_every=20)
        assert result.staleness.delivered == result.total_messages
        assert result.staleness.mean_age > 0
        assert result.staleness.inflight_highwater > 0
        assert result.final_clock >= 1_200

    def test_root_leg_is_causal(self):
        """A push formed inside an advance window is transmitted at the
        window frontier, never back-dated to the previous advance point."""
        spec = monotone_stream(2)
        updates = [u for u in assign_sites(spec, 2)]
        network = build_sharded_async_network(
            NaiveCounter(2),
            2,
            latency=ConstantLatency(10.0),
            root_latency=ConstantLatency(1.0),
            seed=0,
        )
        # The update at t=1 reaches site 0's shard coordinator at t=11,
        # inside advance_to(100): the push is transmitted at the frontier
        # (t=100) and lands at t=101 — it used to be back-dated to the root
        # clock of the *previous* advance point and land at t=1, before the
        # shard itself had formed the estimate.
        network.deliver_update(1, 0, 1)
        network.advance_to(100.0)
        assert network.root.reports == 0
        assert network.channel.in_flight == 1  # the push, on the root leg
        final_clock = network.drain()
        assert network.root.reports == 1
        assert final_clock >= 101.0
        assert network.estimate() == 1.0

    def test_sync_channels_rejected(self):
        network = build_sharded_network(DeterministicCounter(4, 0.1), 2)
        with pytest.raises(ProtocolError):
            run_tracking_async(network, [])


class TestTopologyValidation:
    def test_unknown_site_rejected(self):
        network = build_sharded_network(DeterministicCounter(4, 0.1), 2)
        with pytest.raises(ProtocolError):
            network.deliver_update(1, 9, 1)
        with pytest.raises(ProtocolError):
            network.deliver_batch(9, [1], [1])

    def test_more_shards_than_sites_rejected(self):
        with pytest.raises(ConfigurationError):
            build_sharded_network(DeterministicCounter(2, 0.1), 3)

    def test_factory_without_shard_hook_rejected(self):
        class Bare:
            num_sites = 4

        with pytest.raises(ConfigurationError):
            build_sharded_network(Bare(), 2)

    def test_root_aggregator_needs_two_shards(self):
        with pytest.raises(ConfigurationError):
            RootAggregator(num_shards=1, num_sites=4)

    def test_uplink_refuses_stream_updates(self):
        network = build_sharded_network(DeterministicCounter(4, 0.1), 2)
        with pytest.raises(ProtocolError):
            network.shards[0].uplink.receive_update(1, 1)

    def test_sharded_network_guards_root_wiring(self):
        base = build_sharded_network(DeterministicCounter(4, 0.1), 2)
        with pytest.raises(ConfigurationError):
            ShardedNetwork(base.shards, None)
        single = build_sharded_network(DeterministicCounter(4, 0.1), 1)
        with pytest.raises(ConfigurationError):
            ShardedNetwork(single.shards, base.root_network)

    def test_seeded_factories_derive_per_shard_seeds(self):
        factory = RandomizedCounter(8, 0.1, seed=5)
        assert factory.shard_factory(4, 0).seed == 5
        assert factory.shard_factory(4, 1).seed == 6
        assert HuangCounter(8, 0.1, seed=3).shard_factory(2, 2).seed == 5
        assert RandomizedCounter(8, 0.1).shard_factory(4, 1).seed is None

    def test_reply_quorum_is_the_local_group_size(self):
        network = build_sharded_network(DeterministicCounter(9, 0.1), 3)
        for shard in network.shards:
            assert shard.coordinator.reply_quorum == shard.num_sites == 3
