"""Focused coverage for monitoring error paths and the estimate history.

The attach/send error paths of :class:`repro.monitoring.coordinator.Coordinator`
and :class:`repro.monitoring.site.Site`, the channel's registration
validation, and :mod:`repro.monitoring.history` were previously exercised
only incidentally by integration tests; this module pins their contracts
down directly.
"""

import pytest

from repro.baselines.naive import NaiveCoordinator, NaiveSite
from repro.exceptions import ProtocolError, QueryError
from repro.monitoring import Channel, EstimateHistory
from repro.monitoring.messages import BROADCAST_SITE, COORDINATOR, Message, MessageKind


def _message(receiver=0):
    return Message(
        kind=MessageKind.REQUEST,
        sender=COORDINATOR,
        receiver=receiver,
        payload={},
        time=1,
    )


class TestCoordinatorSendErrors:
    def test_unattached_coordinator_cannot_send(self):
        coordinator = NaiveCoordinator()
        with pytest.raises(ProtocolError, match="not attached"):
            coordinator.send(_message())

    def test_attach_registers_handler_and_enables_send(self):
        coordinator = NaiveCoordinator()
        channel = Channel(num_sites=1)
        channel.register_site(0, lambda m: None)
        coordinator.attach(channel)
        coordinator.send(_message(receiver=0))
        assert channel.stats.messages == 1
        # The attach wired receive_message as the coordinator handler.
        channel.send_to_coordinator(
            Message(
                kind=MessageKind.REPORT,
                sender=0,
                receiver=COORDINATOR,
                payload={"delta": 3},
                time=1,
            )
        )
        assert coordinator.estimate() == 3.0


class TestSiteAttachErrors:
    def test_negative_site_id_rejected(self):
        with pytest.raises(ProtocolError, match="site id"):
            NaiveSite(-1)

    def test_unattached_site_cannot_send(self):
        site = NaiveSite(0)
        with pytest.raises(ProtocolError, match="not attached"):
            site.receive_update(1, 1)  # the naive site sends on every update

    def test_attach_rejects_out_of_range_site_id(self):
        channel = Channel(num_sites=2)
        with pytest.raises(ProtocolError, match="out of range"):
            NaiveSite(2).attach(channel)

    def test_batch_length_mismatch_rejected(self):
        site = NaiveSite(0)
        with pytest.raises(ProtocolError, match="equal length"):
            site.receive_batch([1, 2], [1])


class TestChannelRegistrationErrors:
    def test_channel_requires_at_least_one_site(self):
        with pytest.raises(ProtocolError):
            Channel(num_sites=0)

    def test_send_without_coordinator_registered(self):
        channel = Channel(num_sites=1)
        with pytest.raises(ProtocolError, match="no coordinator"):
            channel.send_to_coordinator(
                Message(
                    kind=MessageKind.REPORT,
                    sender=0,
                    receiver=COORDINATOR,
                    payload={},
                    time=1,
                )
            )

    def test_send_to_unregistered_site(self):
        channel = Channel(num_sites=2)
        channel.register_site(0, lambda m: None)
        with pytest.raises(ProtocolError, match="no registered handler"):
            channel.send_to_site(_message(receiver=1))

    def test_broadcast_with_missing_handler(self):
        channel = Channel(num_sites=2)
        channel.register_site(0, lambda m: None)
        with pytest.raises(ProtocolError, match="no registered handler"):
            channel.send_to_site(_message(receiver=BROADCAST_SITE))

    def test_receiver_out_of_range(self):
        channel = Channel(num_sites=2)
        with pytest.raises(ProtocolError, match="out of range"):
            channel.send_to_site(_message(receiver=5))

    def test_charge_rejects_negative_amounts(self):
        channel = Channel(num_sites=1)
        with pytest.raises(ProtocolError):
            channel.charge(MessageKind.REPORT, -1, 10)
        with pytest.raises(ProtocolError):
            channel.charge(MessageKind.REPORT, 1, -10)

    def test_stats_record_and_bulk_share_accounting(self):
        """The per-message and bulk charge paths agree on every counter."""
        message = Message(
            kind=MessageKind.REPORT,
            sender=0,
            receiver=COORDINATOR,
            payload={"drift": 5},
            time=1,
        )
        per_message = Channel(num_sites=1).stats
        bulk = Channel(num_sites=1).stats
        per_message.record(message, copies=3)
        bulk.record_bulk(message.kind.value, 3, 3 * message.bits())
        assert per_message.messages == bulk.messages
        assert per_message.bits == bulk.bits
        assert per_message.by_kind == bulk.by_kind == {"report": 3}
        snapshot = per_message.snapshot()
        per_message.record(message)
        assert snapshot.messages == 3  # snapshot is independent of later charges
        assert snapshot.by_kind == {"report": 3}


class TestSynchronousCloseInvariant:
    """A dropped reply on a *synchronous* channel must fail loudly.

    The close protocols complete on the k-th reply (so they also work over
    delayed transport); on a synchronous channel all replies arrive
    reentrantly during the request loop, and a missing one is a wiring bug
    that must raise rather than freeze every future close.
    """

    def test_block_close_with_dropped_reply_raises(self):
        from repro.core import DeterministicCounter
        from repro.exceptions import ConfigurationError

        network = DeterministicCounter(2, 0.1).build_network()
        # Re-register site 1's handler with one that drops every message.
        network.channel.register_site(1, lambda message: None)
        with pytest.raises(ConfigurationError, match="expected 2 replies"):
            for time in range(1, 10):
                network.deliver_update(time, 0, 1)

    def test_cormode_round_close_with_dropped_reply_raises(self):
        from repro.baselines import CormodeCounter
        from repro.exceptions import ConfigurationError

        network = CormodeCounter(2, 0.1).build_network()
        network.channel.register_site(1, lambda message: None)
        with pytest.raises(ConfigurationError, match="expected 2 replies"):
            for time in range(1, 10):
                network.deliver_update(time, 0, 1)


class TestEstimateHistoryEdgeCases:
    def test_record_query_roundtrip_dense(self):
        history = EstimateHistory()
        for time in range(1, 101):
            history.record(time, float(time * 2))
        assert history.query(1) == 2.0
        assert history.query(57) == 114.0
        assert history.query(100) == 200.0
        assert history.query(10_000) == 200.0
        assert len(history) == 100

    def test_times_must_strictly_increase(self):
        history = EstimateHistory()
        history.record(5, 1.0)
        with pytest.raises(QueryError, match="must increase"):
            history.record(5, 2.0)
        with pytest.raises(QueryError, match="must increase"):
            history.record(4, 2.0)
        # The failed records left no partial state behind.
        assert history.as_pairs() == [(5, 1.0)]

    def test_query_empty_and_too_early(self):
        history = EstimateHistory()
        with pytest.raises(QueryError, match="empty"):
            history.query(1)
        history.record(10, 1.0)
        with pytest.raises(QueryError, match="precedes"):
            history.query(9)

    def test_as_pairs_returns_copy(self):
        history = EstimateHistory()
        history.record(1, 1.0)
        pairs = history.as_pairs()
        pairs.append((99, 99.0))
        assert history.as_pairs() == [(1, 1.0)]
