"""Tests for the baseline trackers (naive, Cormode, Huang, Liu-style, static)."""

import pytest

from repro.analysis.bounds import (
    liu_fair_coin_message_bound,
    monotone_message_bound_cormode,
    monotone_message_bound_huang,
)
from repro.baselines import (
    CormodeCounter,
    HuangCounter,
    LiuStyleCounter,
    NaiveCounter,
    StaticThresholdCounter,
)
from repro.exceptions import ConfigurationError
from repro.streams import assign_sites, monotone_stream, random_walk_stream, sawtooth_stream


class TestNaiveCounter:
    def test_exact_and_one_message_per_update(self):
        spec = random_walk_stream(1_000, seed=1)
        result = NaiveCounter(num_sites=3).track(assign_sites(spec, 3))
        assert result.max_relative_error() == 0.0
        assert result.total_messages == 1_000


class TestCormodeCounter:
    def test_error_guarantee_on_monotone_streams(self):
        spec = monotone_stream(10_000)
        for k in (1, 4, 8):
            result = CormodeCounter(k, 0.1).track(assign_sites(spec, k))
            assert result.max_relative_error() <= 0.1 + 1e-12

    def test_message_bound_monotone(self):
        spec = monotone_stream(20_000)
        k, epsilon = 4, 0.1
        result = CormodeCounter(k, epsilon).track(assign_sites(spec, k))
        # O((k/eps) log n) with a modest constant.
        assert result.total_messages <= 10 * monotone_message_bound_cormode(k, epsilon, spec.length)

    def test_far_cheaper_than_naive_on_monotone(self):
        spec = monotone_stream(20_000)
        cormode = CormodeCounter(2, 0.1).track(assign_sites(spec, 2))
        assert cormode.total_messages < 0.1 * spec.length

    def test_rounds_advance(self):
        spec = monotone_stream(5_000)
        network = CormodeCounter(2, 0.1).build_network()
        for update in assign_sites(spec, 2):
            network.deliver_update(update.time, update.site, update.delta)
        assert network.coordinator.rounds_completed > 5

    def test_no_guarantee_on_non_monotone_streams(self):
        # The classic counter has no relative-error guarantee once values can
        # shrink: on a sawtooth crossing small values it is essentially always
        # stale.  This is the gap the paper's framework addresses.
        spec = sawtooth_stream(4_000, amplitude=200)
        result = CormodeCounter(2, 0.1).track(assign_sites(spec, 2))
        assert result.violation_fraction(0.1) > 0.05

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            CormodeCounter(0, 0.1)
        with pytest.raises(ConfigurationError):
            CormodeCounter(2, 0.0)


class TestHuangCounter:
    def test_violation_fraction_small_on_monotone(self):
        spec = monotone_stream(10_000)
        result = HuangCounter(4, 0.1, seed=1).track(assign_sites(spec, 4))
        assert result.violation_fraction(0.1) < 1.0 / 3.0

    def test_message_bound_monotone(self):
        spec = monotone_stream(20_000)
        k, epsilon = 4, 0.1
        result = HuangCounter(k, epsilon, seed=2).track(assign_sites(spec, k))
        assert result.total_messages <= 20 * monotone_message_bound_huang(k, epsilon, spec.length)

    def test_rejects_deletions(self):
        network = HuangCounter(1, 0.1, seed=3).build_network()
        with pytest.raises(ConfigurationError):
            network.deliver_update(1, 0, -1)

    def test_cheaper_than_cormode_for_many_sites(self):
        spec = monotone_stream(30_000)
        k, epsilon = 25, 0.05
        cormode = CormodeCounter(k, epsilon).track(assign_sites(spec, k))
        huang = HuangCounter(k, epsilon, seed=4).track(assign_sites(spec, k))
        assert huang.total_messages < cormode.total_messages

    def test_reproducible(self):
        spec = monotone_stream(3_000)
        updates = assign_sites(spec, 3)
        first = HuangCounter(3, 0.1, seed=9).track(updates)
        second = HuangCounter(3, 0.1, seed=9).track(updates)
        assert first.total_messages == second.total_messages


class TestLiuStyleCounter:
    def test_communication_matches_sqrt_n_regime(self):
        spec = random_walk_stream(20_000, seed=5)
        k, epsilon = 4, 0.2
        result = LiuStyleCounter(k, epsilon, seed=6).track(assign_sites(spec, k))
        assert result.total_messages <= 10 * liu_fair_coin_message_bound(k, epsilon, spec.length)
        assert result.total_messages < spec.length

    def test_mostly_accurate_on_fair_coins(self):
        spec = random_walk_stream(10_000, seed=7)
        result = LiuStyleCounter(4, 0.2, seed=8).track(assign_sites(spec, 4))
        # Distributional guarantee only: most steps are fine, some are not.
        assert result.violation_fraction(0.2) < 0.25

    def test_probability_decays_with_time(self):
        from repro.baselines.liu import LiuStyleSite

        site = LiuStyleSite(0, num_sites=4, epsilon=0.1, seed=1)
        assert site.report_probability(1) == 1.0
        assert site.report_probability(10_000) < site.report_probability(100)


class TestStaticThresholdCounter:
    def test_threshold_one_is_exact(self):
        spec = random_walk_stream(2_000, seed=9)
        result = StaticThresholdCounter(2, threshold=1).track(assign_sites(spec, 2))
        assert result.max_relative_error() == 0.0
        assert result.total_messages == 2_000

    def test_large_threshold_saves_messages_but_loses_guarantee(self):
        spec = random_walk_stream(5_000, seed=10)
        updates = assign_sites(spec, 2)
        coarse = StaticThresholdCounter(2, threshold=20, epsilon=0.1).track(updates)
        assert coarse.total_messages < 1_000
        assert coarse.violation_fraction(0.1) > 0.1

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            StaticThresholdCounter(2, threshold=0)
