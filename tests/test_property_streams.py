"""Property test: every stream generator feeds the Section 3 trackers.

The satellite invariant: every generator in :mod:`repro.streams` yields a
stream that either is already a unit stream, or round-trips through
:func:`repro.core.expansion.expand_stream` into one — and in both cases the
resulting unit stream runs through *both* Section 3 trackers without error.
Hypothesis drives the generator parameters so the invariant is exercised
well beyond the hand-picked values in the example suite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeterministicCounter, RandomizedCounter
from repro.core.expansion import expand_stream
from repro.streams import (
    adversarial_flip_stream,
    assign_sites,
    biased_walk_stream,
    bursty_stream,
    constant_stream,
    monotone_stream,
    nearly_monotone_stream,
    periodic_stream,
    random_walk_stream,
    sawtooth_stream,
    sign_alternating_stream,
)

lengths = st.integers(min_value=1, max_value=200)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _generator_strategy():
    """A strategy producing one freshly generated stream per example."""
    return st.one_of(
        st.builds(monotone_stream, lengths),
        st.builds(
            nearly_monotone_stream,
            lengths,
            st.floats(min_value=0.0, max_value=0.49),
            seeds,
        ),
        st.builds(random_walk_stream, lengths, seeds),
        st.builds(
            biased_walk_stream,
            lengths,
            st.floats(min_value=0.01, max_value=1.0),
            seeds,
        ),
        st.builds(
            sawtooth_stream, lengths, st.integers(min_value=1, max_value=40)
        ),
        st.builds(
            bursty_stream,
            lengths,
            st.integers(min_value=1, max_value=32),
            st.floats(min_value=0.0, max_value=0.9),
            seeds,
        ),
        # periodic_stream collapses to the nearest +-1 and skips zero steps;
        # n >= 8 guarantees the rounded trend moves at least once.
        st.builds(
            periodic_stream,
            st.integers(min_value=8, max_value=200),
            st.integers(min_value=2, max_value=50),
            st.floats(min_value=0.3, max_value=2.0),
        ),
        # constant_stream with value 0 is the all-zero stream, which is
        # degenerate by construction (expansion is empty); exclude it.
        st.builds(
            constant_stream,
            lengths,
            st.integers(min_value=-30, max_value=30).filter(lambda v: v != 0),
        ),
        st.builds(sign_alternating_stream, lengths),
        st.builds(
            adversarial_flip_stream,
            st.integers(min_value=4, max_value=100),
            st.integers(min_value=1, max_value=16),
            # At least one flip: a flip-free stream is all zeros, which is
            # degenerate by construction (its expansion is empty).
            st.lists(
                st.integers(min_value=1, max_value=4), min_size=1, max_size=4
            ),
        ),
    )


class TestEveryGeneratorFeedsTheTrackers:
    @given(
        _generator_strategy(),
        st.integers(min_value=1, max_value=4),
        st.sampled_from([0.1, 0.3]),
    )
    @settings(max_examples=60, deadline=None)
    def test_unit_or_expandable_and_trackable(self, spec, num_sites, epsilon):
        if not spec.is_unit_stream():
            spec = expand_stream(spec)
            assert spec.is_unit_stream()
        updates = assign_sites(spec, num_sites)
        deterministic = DeterministicCounter(num_sites, epsilon).track(
            updates, record_every=7
        )
        randomized = RandomizedCounter(num_sites, epsilon, seed=17).track(
            updates, record_every=7
        )
        # Both runs completed; the deterministic one must also meet its
        # guarantee on every stream, as in the paper.
        assert deterministic.records[-1].time == len(updates)
        assert randomized.records[-1].time == len(updates)
        assert deterministic.error_violations(epsilon) == 0
